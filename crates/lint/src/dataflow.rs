//! Abstract interpretation over the token stream: rule R002.
//!
//! This module grows the lint from a call-graph analyzer into a small
//! dataflow engine. Per function it runs an intraprocedural abstract
//! interpretation on the [`crate::intervals`] lattice tagged with the
//! [`crate::units`] domain, walking the existing token stream (no new
//! parser pass — the walker is a total recursive descent over
//! statements and expressions that resynchronises at `;` on anything it
//! does not model). Per-function summaries (entry ranges → return
//! range) are then lifted interprocedurally across the PR-4 call graph
//! in three runs:
//!
//! 1. every parameter starts at the top of its declared type (plus any
//!    `lint.toml` unit annotation or `checked_*` helper bound), and the
//!    argument ranges observed at every call site are recorded;
//! 2. non-`pub` functions re-run with each parameter narrowed to the
//!    join of its observed arguments (sound: every caller of a private
//!    function is in the analyzed set — `pub` functions keep
//!    top-of-type because callers outside the scope are not seen);
//! 3. a final run with obligation collection on emits findings.
//!
//! The obligations R002 proves along all non-test paths:
//!
//! * every shift by a non-literal amount stays below the shifted
//!   type's width (literal amounts are compiler-checked already);
//! * every `addr::cast::checked_*` argument fits the helper's target
//!   type, so its `debug_assert` can never fire — even in release
//!   builds where it vanishes;
//! * every argument to a unit-annotated parameter fits the unit's
//!   range (bits ≤ 128, nybbles ≤ 32, segments ≤ 65535) *and* carries
//!   a compatible unit tag (a nybble index flowing into a bits
//!   parameter is flagged even when its range happens to fit);
//! * every struct-literal write to an `assumed_fields` field stays in
//!   the assumed range, anchoring the field assumptions the reads use.
//!
//! Violations carry a witness chain like R001's:
//! `value range [0,256] from loop at addr.rs:L → shl128 amount`.
//! Sites the dataflow *proves* discharge L003/L006's syntactic
//! findings (see [`DataflowResult::discharges`]); sites it cannot
//! prove need a reasoned `allow(R002, …)`.
//!
//! Soundness boundaries, stated rather than implied: `usize` is
//! modelled as 64 bits (the workspace's documented target); constructs
//! the walker does not model evaluate to top-of-type (never to
//! something narrower); environments refined to infeasibility are
//! dead and excluded from joins; test regions are excluded end to end,
//! matching R002's "all non-test paths" contract.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Config;
use crate::intervals::{Interval, Ty, TOP};
use crate::lexer::{int_suffix, TokKind, Token};
use crate::report::Diagnostic;
use crate::rules::{semantic_finding, SemanticRule, Workspace};
use crate::scan::ScannedFile;
use crate::symbols::SymbolTable;
use crate::units::{Annotations, Unit};

/// Counters reported in `BENCH_lint.json` and useful in tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct DataflowStats {
    /// Functions walked per pass.
    pub fns_analyzed: usize,
    /// Interprocedural passes run.
    pub passes: usize,
    /// Functions that produced a non-trivial return summary.
    pub summaries: usize,
    /// Proof obligations checked on the final pass.
    pub obligations: usize,
    /// Obligations discharged by the analysis.
    pub proven: usize,
}

/// Everything `analyze` produces: R002 findings plus the proven-site
/// sets the engine uses to discharge L003/L006 findings.
#[derive(Debug, Default)]
pub struct DataflowResult {
    /// R002 findings (witness chains included).
    pub findings: Vec<Diagnostic>,
    /// Analysis counters.
    pub stats: DataflowStats,
    proven_casts: BTreeSet<(String, usize, String)>,
    unproven_casts: BTreeSet<(String, usize, String)>,
    proven_arith: BTreeSet<(String, usize, String)>,
    unproven_arith: BTreeSet<(String, usize, String)>,
}

impl DataflowResult {
    /// True when the dataflow proved the site behind an L003/L006
    /// finding in-range, so the finding can be discharged instead of
    /// needing a pragma. Keyed by (file, line, operator-or-type): a
    /// site only discharges when every occurrence of that key on the
    /// line was proven and none was left open.
    pub fn discharges(&self, d: &Diagnostic) -> bool {
        let Some(item) = d.message.split('`').nth(1) else {
            return false;
        };
        let (proven, unproven, key) = match d.rule.as_str() {
            "L003" => {
                let ty = item.strip_prefix("as ").unwrap_or(item);
                (&self.proven_casts, &self.unproven_casts, ty.to_string())
            }
            "L006" => (&self.proven_arith, &self.unproven_arith, item.to_string()),
            _ => return false,
        };
        let key = (d.rel.clone(), d.line, key);
        proven.contains(&key) && !unproven.contains(&key)
    }
}

/// The declared type of a field or parameter, as far as the dataflow
/// models types: a primitive unsigned integer, a named (workspace)
/// struct, or an array. `Option<T>` and `Box<T>` are transparent
/// wrappers — consistent with the `Some`/`Ok`-identity value model —
/// so `&mut Option<Box<Node>>` reads as `Node`. Other generic types
/// keep their head name and drop the arguments; reference-typed
/// fields strip the reference.
#[derive(Clone, Debug, PartialEq, Eq)]
enum FieldTy {
    Prim(Ty),
    Named(String),
    Array(Box<FieldTy>),
}

/// One declared parameter of a function.
#[derive(Clone, Debug)]
struct ParamInfo {
    name: String,
    ty: Option<FieldTy>,
}

/// An abstract value: interval, optional machine type, unit tag,
/// provenance for witness chains, and (when the value is a struct or
/// array) what its fields/elements are.
#[derive(Clone, Debug)]
struct AbsVal {
    iv: Interval,
    ty: Option<Ty>,
    unit: Unit,
    origin: Option<String>,
    sty: Option<String>,
    arr: Option<FieldTy>,
    is_self: bool,
}

impl AbsVal {
    fn top() -> AbsVal {
        AbsVal {
            iv: TOP,
            ty: None,
            unit: Unit::Opaque,
            origin: None,
            sty: None,
            arr: None,
            is_self: false,
        }
    }

    fn of_ty(ty: Ty) -> AbsVal {
        AbsVal {
            iv: Interval::top_of(ty),
            ty: Some(ty),
            ..AbsVal::top()
        }
    }

    /// The top value of a declared type: primitives get their interval
    /// top, named structs keep the name for field/method resolution,
    /// arrays keep their element type.
    fn of_field(fty: &FieldTy) -> AbsVal {
        match fty {
            FieldTy::Prim(t) => AbsVal::of_ty(*t),
            FieldTy::Named(s) => AbsVal {
                sty: Some(s.clone()),
                ..AbsVal::top()
            },
            FieldTy::Array(e) => AbsVal {
                arr: Some((**e).clone()),
                ..AbsVal::top()
            },
        }
    }

    fn exact(v: u128, ty: Option<Ty>) -> AbsVal {
        AbsVal {
            iv: Interval::exact(v),
            ty,
            ..AbsVal::top()
        }
    }

    fn join(&self, o: &AbsVal) -> AbsVal {
        AbsVal {
            iv: self.iv.join(&o.iv),
            ty: if self.ty == o.ty { self.ty } else { None },
            unit: self.unit.join(o.unit),
            origin: self.origin.clone().or_else(|| o.origin.clone()),
            sty: if self.sty == o.sty {
                self.sty.clone()
            } else {
                None
            },
            arr: if self.arr == o.arr {
                self.arr.clone()
            } else {
                None
            },
            is_self: false,
        }
    }
}

/// An abstract environment: variable (and `self.field` pseudo-variable)
/// bindings, plus a deadness flag for refined-to-infeasible paths.
#[derive(Clone, Debug, Default)]
struct Env {
    vars: BTreeMap<String, AbsVal>,
    dead: bool,
}

/// Join at a control-flow merge. Dead branches drop out; only
/// variables live on both sides survive (a variable declared in one
/// branch is out of scope after it).
fn join_env(a: &Env, b: &Env) -> Env {
    if a.dead {
        return b.clone();
    }
    if b.dead {
        return a.clone();
    }
    let mut vars = BTreeMap::new();
    for (k, va) in &a.vars {
        if let Some(vb) = b.vars.get(k) {
            vars.insert(k.clone(), va.join(vb));
        }
    }
    Env { vars, dead: false }
}

/// Widen `head` toward `next`; returns the widened env and whether
/// anything changed (fixpoint detection ignores origins, which differ
/// per iteration). Widened variables get `origin` so witness chains
/// can say "from loop at file:line".
fn widen_env(head: &Env, next: &Env, origin: &str) -> (Env, bool) {
    if head.dead {
        return (next.clone(), !next.dead);
    }
    if next.dead {
        return (head.clone(), false);
    }
    let mut changed = false;
    let mut vars = BTreeMap::new();
    for (k, vh) in &head.vars {
        let Some(vn) = next.vars.get(k) else {
            changed = true;
            continue;
        };
        let iv = vh.iv.widen(&vn.iv);
        let mut v = vh.clone();
        if iv != vh.iv {
            changed = true;
            v.origin = Some(origin.to_string());
        }
        if vh.ty != vn.ty {
            v.ty = None;
        }
        v.unit = vh.unit.join(vn.unit);
        v.iv = iv;
        vars.insert(k.clone(), v);
    }
    (Env { vars, dead: false }, changed)
}

/// Break/continue environments of the innermost loop being walked.
#[derive(Default)]
struct LoopCtx {
    brk: Vec<Env>,
    cont: Vec<Env>,
}

// ----------------------------------------------------------- tokens

fn is_comment(t: &Token) -> bool {
    matches!(
        t.kind,
        TokKind::LineComment { .. } | TokKind::BlockComment { .. }
    )
}

/// First non-comment token index at or after `i`.
fn skipc(t: &[Token], mut i: usize) -> usize {
    while t.get(i).is_some_and(is_comment) {
        i += 1;
    }
    i
}

/// Index of the delimiter matching the opener at `open` (`(`, `[`,
/// `{`), or `end` when unbalanced.
fn match_delim(t: &[Token], open: usize, end: usize) -> usize {
    let (o, c) = match t.get(open).map(|x| x.text.as_str()) {
        Some("(") => ("(", ")"),
        Some("[") => ("[", "]"),
        Some("{") => ("{", "}"),
        _ => return open,
    };
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        if let Some(tok) = t.get(i) {
            if tok.is_op(o) {
                depth += 1;
            } else if tok.is_op(c) {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i;
                }
            }
        }
        i += 1;
    }
    end
}

/// First index in `[i, end)` at bracket depth 0 where `pred` holds.
fn scan_top(t: &[Token], i: usize, end: usize, pred: impl Fn(&Token) -> bool) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = i;
    while j < end {
        if let Some(tok) = t.get(j) {
            if !is_comment(tok) {
                let s = tok.text.as_str();
                if depth == 0 && pred(tok) {
                    return Some(j);
                }
                if tok.kind == TokKind::Op && matches!(s, "(" | "[" | "{") {
                    depth += 1;
                } else if tok.kind == TokKind::Op && matches!(s, ")" | "]" | "}") {
                    depth = depth.saturating_sub(1);
                }
            }
        }
        j += 1;
    }
    None
}

/// Splits `(i, end)` (the *inside* of a delimited region) into
/// top-level comma-separated spans. Closure parameter pipes are
/// treated as a group so `fold(0, |acc, x| …)` splits into two
/// arguments, not three.
fn split_commas(t: &[Token], i: usize, end: usize) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut depth = 0usize;
    let mut start = i;
    let mut j = i;
    let mut arg_open = true; // at the start of an argument
    while j < end {
        let Some(tok) = t.get(j) else { break };
        if is_comment(tok) {
            j += 1;
            continue;
        }
        let s = tok.text.as_str();
        if tok.kind == TokKind::Op && matches!(s, "(" | "[" | "{") {
            depth += 1;
            arg_open = false;
        } else if tok.kind == TokKind::Op && matches!(s, ")" | "]" | "}") {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && tok.is_op(",") {
            if j > start {
                spans.push((start, j));
            }
            start = j + 1;
            arg_open = true;
        } else if depth == 0 && tok.is_op("|") && arg_open {
            // Closure parameter list: skip to the closing pipe.
            j += 1;
            while j < end && !t.get(j).is_some_and(|x| x.is_op("|")) {
                j += 1;
            }
            arg_open = false;
        } else if !(tok.is_ident("move") || tok.is_op("||")) {
            arg_open = false;
        }
        j += 1;
    }
    if end > start {
        spans.push((start, end));
    }
    spans
}

/// Parses an integer literal's spelling into (value, suffix type).
fn parse_int(text: &str) -> Option<(u128, Option<Ty>)> {
    let (body, ty) = match int_suffix(text) {
        Some(s) => (text.strip_suffix(s).unwrap_or(text), Ty::parse(s)),
        None => (text, None),
    };
    let clean: String = body.chars().filter(|c| *c != '_').collect();
    let (digits, radix) = if let Some(h) = clean.strip_prefix("0x") {
        (h, 16)
    } else if let Some(o) = clean.strip_prefix("0o") {
        (o, 8)
    } else if let Some(b) = clean.strip_prefix("0b") {
        (b, 2)
    } else {
        (clean.as_str(), 10)
    };
    u128::from_str_radix(digits, radix).ok().map(|v| (v, ty))
}

/// Parses a type spelling starting at `i`. Generic and trait-object
/// types return `None` (unmodelled).
fn parse_field_ty(t: &[Token], i: usize, end: usize) -> Option<FieldTy> {
    let mut j = skipc(t, i);
    while t
        .get(j)
        .is_some_and(|x| x.is_op("&") || x.is_ident("mut") || x.kind == TokKind::Lifetime)
    {
        j = skipc(t, j + 1);
    }
    if t.get(j).is_some_and(|x| x.is_op("[")) {
        return parse_field_ty(t, j + 1, end).map(|e| FieldTy::Array(Box::new(e)));
    }
    let mut last: Option<String> = None;
    while j < end {
        let Some(tok) = t.get(j) else { break };
        if tok.kind == TokKind::Ident {
            last = Some(tok.text.clone());
            j = skipc(t, j + 1);
            if t.get(j).is_some_and(|x| x.is_op("::")) {
                j = skipc(t, j + 1);
                continue;
            }
            break;
        }
        break;
    }
    let name = last?;
    if t.get(j).is_some_and(|x| x.is_op("<")) && matches!(name.as_str(), "Option" | "Box") {
        // Transparent wrappers: `Option<Box<Node>>` reads as `Node`,
        // matching the `Some`/`Ok`-identity value model.
        return parse_field_ty(t, j + 1, end);
    }
    match Ty::parse(&name) {
        Some(p) => Some(FieldTy::Prim(p)),
        None => Some(FieldTy::Named(name)),
    }
}

/// The fixed bounds of the `addr::cast::checked_*` helper family:
/// entry assumption for the helper's own body, proof obligation at
/// every call site (assume–guarantee; all non-test callers are inside
/// R002's scope, which is what makes the assumption sound).
fn helper_bound(name: &str) -> Option<(u128, Ty)> {
    match name {
        "checked_u8" => Some((0xff, Ty::U8)),
        "checked_u16" | "checked_seg" => Some((0xffff, Ty::U16)),
        "checked_u32" => Some((u32::MAX as u128, Ty::U32)),
        "checked_usize" => Some((u64::MAX as u128, Ty::Usize)),
        "checked_nybble" => Some((0xf, Ty::U8)),
        _ => None,
    }
}

/// Builds the struct-layout table: struct name → field name → type.
/// Tuple-struct fields are named "0", "1", …; generic structs are
/// skipped (their fields read as top).
fn build_structs(files: &[ScannedFile]) -> BTreeMap<String, BTreeMap<String, FieldTy>> {
    let mut out = BTreeMap::new();
    for file in files {
        let t = file.tokens.as_slice();
        let mut i = 0usize;
        while i < t.len() {
            if !t.get(i).is_some_and(|x| x.is_ident("struct")) {
                i += 1;
                continue;
            }
            let ni = skipc(t, i + 1);
            let Some(name_tok) = t.get(ni).filter(|x| x.kind == TokKind::Ident) else {
                i += 1;
                continue;
            };
            let name = name_tok.text.clone();
            let mut bi = skipc(t, ni + 1);
            // Skip `<T, …>` generics and a `where` clause: the type
            // parameters themselves are unmodelled, but concrete
            // fields of a generic struct still resolve.
            if t.get(bi).is_some_and(|x| x.is_op("<")) {
                bi = skipc(t, skip_angles(t, bi, t.len()));
            }
            if t.get(bi).is_some_and(|x| x.is_ident("where")) {
                while bi < t.len() && !t.get(bi).is_some_and(|x| x.is_op("{") || x.is_op(";")) {
                    bi += 1;
                }
            }
            let mut fields = BTreeMap::new();
            match t.get(bi).map(|x| x.text.as_str()) {
                Some("(") => {
                    let close = match_delim(t, bi, t.len());
                    for (idx, (s, e)) in split_commas(t, bi + 1, close).iter().enumerate() {
                        let mut s = skipc(t, *s);
                        if t.get(s).is_some_and(|x| x.is_ident("pub")) {
                            s = skipc(t, s + 1);
                            if t.get(s).is_some_and(|x| x.is_op("(")) {
                                s = skipc(t, match_delim(t, s, *e) + 1);
                            }
                        }
                        if let Some(ty) = parse_field_ty(t, s, *e) {
                            fields.insert(idx.to_string(), ty);
                        }
                    }
                    i = close + 1;
                }
                Some("{") => {
                    let close = match_delim(t, bi, t.len());
                    for (s, e) in split_commas(t, bi + 1, close) {
                        let mut s = skipc(t, s);
                        // Skip field attributes and visibility.
                        while t.get(s).is_some_and(|x| x.is_op("#")) {
                            let b = skipc(t, s + 1);
                            s = skipc(t, match_delim(t, b, e) + 1);
                        }
                        if t.get(s).is_some_and(|x| x.is_ident("pub")) {
                            s = skipc(t, s + 1);
                            if t.get(s).is_some_and(|x| x.is_op("(")) {
                                s = skipc(t, match_delim(t, s, e) + 1);
                            }
                        }
                        let Some(fname) = t.get(s).filter(|x| x.kind == TokKind::Ident) else {
                            continue;
                        };
                        let colon = skipc(t, s + 1);
                        if !t.get(colon).is_some_and(|x| x.is_op(":")) {
                            continue;
                        }
                        if let Some(ty) = parse_field_ty(t, colon + 1, e) {
                            fields.insert(fname.text.clone(), ty);
                        }
                    }
                    i = close + 1;
                }
                _ => {
                    // `struct Name;` — unit structs carry nothing the
                    // dataflow models.
                    i = bi + 1;
                    continue;
                }
            }
            out.insert(name, fields);
        }
    }
    out
}

/// Records the payload type of every single-payload tuple variant of a
/// workspace enum, keyed `Enum::Variant`. `match`/`let` bindings over
/// such a pattern (`Action::Branch(p)`) are then typed from the enum
/// declaration instead of degrading to top. Local enums inside fn
/// bodies are found too — the scan is flat over the token stream.
fn build_variants(files: &[ScannedFile]) -> BTreeMap<String, FieldTy> {
    let mut out = BTreeMap::new();
    for file in files {
        let t = file.tokens.as_slice();
        let mut i = 0usize;
        while i < t.len() {
            if !t.get(i).is_some_and(|x| x.is_ident("enum")) {
                i += 1;
                continue;
            }
            let ni = skipc(t, i + 1);
            let Some(name_tok) = t.get(ni).filter(|x| x.kind == TokKind::Ident) else {
                i += 1;
                continue;
            };
            let name = name_tok.text.clone();
            let mut bi = skipc(t, ni + 1);
            if t.get(bi).is_some_and(|x| x.is_op("<")) {
                bi = skipc(t, skip_angles(t, bi, t.len()));
            }
            if !t.get(bi).is_some_and(|x| x.is_op("{")) {
                i = ni + 1;
                continue;
            }
            let close = match_delim(t, bi, t.len());
            for (s, e) in split_commas(t, bi + 1, close) {
                let mut s = skipc(t, s);
                while t.get(s).is_some_and(|x| x.is_op("#")) {
                    let b = skipc(t, s + 1);
                    s = skipc(t, match_delim(t, b, e) + 1);
                }
                let Some(vtok) = t.get(s).filter(|x| x.kind == TokKind::Ident) else {
                    continue;
                };
                let p = skipc(t, s + 1);
                if !t.get(p).is_some_and(|x| x.is_op("(")) {
                    continue;
                }
                let pc = match_delim(t, p, e);
                let parts = split_commas(t, p + 1, pc);
                if parts.len() != 1 {
                    continue;
                }
                if let Some((ps, pe)) = parts.first() {
                    if let Some(fty) = parse_field_ty(t, *ps, *pe) {
                        out.insert(format!("{name}::{}", vtok.text), fty);
                    }
                }
            }
            i = close + 1;
        }
    }
    out
}

/// Parses `assumed_fields = ["Prefix.len <= 128", …]` from
/// `[rules.R002]`: trusted field ranges, anchored by the constructor
/// asserts that R002 itself checks at every struct-literal write.
fn parse_assumed(cfg: &Config) -> BTreeMap<(String, String), u128> {
    let mut out = BTreeMap::new();
    for raw in cfg.list("rules.R002", "assumed_fields") {
        let Some((lhs, rhs)) = raw.split_once("<=") else {
            continue;
        };
        let Some((ty, field)) = lhs.trim().split_once('.') else {
            continue;
        };
        if let Ok(max) = rhs.trim().parse::<u128>() {
            out.insert((ty.trim().to_string(), field.trim().to_string()), max);
        }
    }
    out
}

/// Parses one function's signature out of the token stream: parameter
/// names/types and the declared return type if it has one.
fn parse_signature(
    t: &[Token],
    body_open: usize,
    self_ty: Option<&str>,
) -> (Vec<ParamInfo>, Option<FieldTy>) {
    // Walk back from the body brace to the `fn` keyword.
    let mut fi = body_open;
    let floor = body_open.saturating_sub(400);
    let mut found = false;
    while fi > floor {
        fi -= 1;
        if t.get(fi).is_some_and(|x| x.is_ident("fn")) {
            found = true;
            break;
        }
    }
    if !found {
        return (Vec::new(), None);
    }
    let mut j = skipc(t, fi + 1);
    // Function name, then optional generics.
    j = skipc(t, j + 1);
    if t.get(j).is_some_and(|x| x.is_op("<")) {
        let mut depth = 0i64;
        while j < body_open {
            match t.get(j).map(|x| x.text.as_str()) {
                Some("<") => depth += 1,
                Some(">") => depth -= 1,
                Some(">>") => depth -= 2,
                _ => {}
            }
            j += 1;
            if depth <= 0 {
                break;
            }
        }
        j = skipc(t, j);
    }
    if !t.get(j).is_some_and(|x| x.is_op("(")) {
        return (Vec::new(), None);
    }
    let close = match_delim(t, j, body_open);
    let mut params = Vec::new();
    for (s, e) in split_commas(t, j + 1, close) {
        let mut s = skipc(t, s);
        while t
            .get(s)
            .is_some_and(|x| x.is_op("&") || x.is_ident("mut") || x.kind == TokKind::Lifetime)
        {
            s = skipc(t, s + 1);
        }
        if t.get(s).is_some_and(|x| x.is_ident("self")) {
            params.push(ParamInfo {
                name: "self".to_string(),
                ty: self_ty.map(|n| FieldTy::Named(n.to_string())),
            });
            continue;
        }
        let Some(name_tok) = t.get(s).filter(|x| x.kind == TokKind::Ident) else {
            params.push(ParamInfo {
                name: "_".to_string(),
                ty: None,
            });
            continue;
        };
        let colon = skipc(t, s + 1);
        let ty = if t.get(colon).is_some_and(|x| x.is_op(":")) {
            parse_field_ty(t, colon + 1, e)
        } else {
            None
        };
        params.push(ParamInfo {
            name: name_tok.text.clone(),
            ty,
        });
    }
    // Declared return type: primitives clamp summaries; named structs
    // (`-> &Node`) let call results carry a receiver type so field and
    // method lookups resolve through the struct table.
    let mut ret = None;
    let r = skipc(t, close + 1);
    if t.get(r).is_some_and(|x| x.is_op("->")) {
        ret = parse_field_ty(t, r + 1, body_open);
    }
    (params, ret)
}

/// Runs the dataflow over every non-test function in R002's configured
/// scope and returns findings plus proven-site sets.
pub fn analyze(ws: &Workspace<'_>, cfg: &Config) -> DataflowResult {
    let mut a = Analyzer::new(ws, cfg);
    let scope: Vec<usize> = ws
        .symbols
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.body.is_some()
                && !f.is_test
                && ws
                    .files
                    .get(f.file)
                    .is_some_and(|file| cfg.rule_applies("R002", &file.rel))
        })
        .map(|(i, _)| i)
        .collect();
    a.stats.fns_analyzed = scope.len();
    for pass in 0..3 {
        a.stats.passes += 1;
        a.collect = pass == 2;
        if pass > 0 {
            a.narrow_private_entries();
        }
        for &fid in &scope {
            a.summaries[fid] = a.walk_fn(fid);
        }
    }
    a.stats.summaries = a.summaries.iter().filter(|s| s.is_some()).count();
    DataflowResult {
        findings: a.findings,
        stats: a.stats,
        proven_casts: a.proven_casts,
        unproven_casts: a.unproven_casts,
        proven_arith: a.proven_arith,
        unproven_arith: a.unproven_arith,
    }
}

/// R002 as a registered semantic rule (for `--list-rules` and direct
/// rule-level tests). The engine itself calls [`analyze`] once so it
/// can also use the proven sets for discharging.
pub struct BitDomain;

impl SemanticRule for BitDomain {
    fn id(&self) -> &'static str {
        "R002"
    }
    fn name(&self) -> &'static str {
        "bit-domain-safety"
    }
    fn describe(&self) -> &'static str {
        "interval+unit dataflow must prove shift amounts, prefix/nybble/segment ranges, and checked_* arguments on all non-test paths"
    }
    fn check(&self, ws: &Workspace<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
        out.extend(analyze(ws, cfg).findings);
    }
}

/// Depth bound for expression recursion: past this the walker returns
/// top rather than risking the stack (L001 territory otherwise).
const MAX_DEPTH: usize = 64;
/// Loop fixpoint iteration cap; widening converges far earlier, this is
/// the belt-and-suspenders bound.
const MAX_LOOP_ITERS: usize = 24;

/// Greatest lower bound of two intervals; never empty in practice
/// (callers only meet a value with a range it was declared to inhabit),
/// and a disjoint meet falls back to the hull rather than bottom.
fn meet(a: &Interval, b: &Interval) -> Interval {
    Interval::new(a.lo.max(b.lo), a.hi.min(b.hi))
}

/// How a loop's body entry and exit are derived.
enum LoopKind {
    /// `for var in <range or iterator>` — `var` rebound each iteration.
    For { var: Option<String>, val: AbsVal },
    /// `while cond` — body entry refines `cond` true, exit refines it
    /// false; `cond` is the token span of the condition.
    While { cond: (usize, usize) },
    /// `while let PAT = expr` — bindings rebound each iteration.
    WhileLet {
        binds: Vec<String>,
        scrut: (usize, usize),
    },
    /// `loop { … }` — exits only through `break`.
    Plain,
}

struct Analyzer<'a> {
    files: &'a [ScannedFile],
    table: &'a SymbolTable,
    ann: Annotations,
    structs: BTreeMap<String, BTreeMap<String, FieldTy>>,
    /// Single-payload tuple-variant types, keyed `Enum::Variant`.
    variants: BTreeMap<String, FieldTy>,
    assumed: BTreeMap<(String, String), u128>,
    /// `(file index, opening-paren token index)` → workspace callees,
    /// from the PR-4 call graph.
    call_map: BTreeMap<(usize, usize), Vec<usize>>,
    params: Vec<Vec<ParamInfo>>,
    ret_prim: Vec<Option<Ty>>,
    /// Struct-table-resolved named return types (`-> &Node`): calls to
    /// these functions yield values usable as typed receivers.
    ret_named: Vec<Option<String>>,
    /// Entry values derived from declared types + annotations alone.
    base_entry: Vec<Vec<AbsVal>>,
    /// Entry values for the current pass (narrowed for private fns).
    entry: Vec<Vec<AbsVal>>,
    /// Join of every argument interval observed at call sites.
    observed: Vec<Vec<Option<Interval>>>,
    /// Witness-origin chain for the observed arguments.
    observed_origin: Vec<Vec<Option<String>>>,
    summaries: Vec<Option<Interval>>,
    cur_file: usize,
    cur_rel: String,
    cur_self: Option<String>,
    loops: Vec<LoopCtx>,
    ret_acc: Option<Interval>,
    depth: usize,
    collect: bool,
    findings: Vec<Diagnostic>,
    seen: BTreeSet<(String, usize, String)>,
    proven_casts: BTreeSet<(String, usize, String)>,
    unproven_casts: BTreeSet<(String, usize, String)>,
    proven_arith: BTreeSet<(String, usize, String)>,
    unproven_arith: BTreeSet<(String, usize, String)>,
    stats: DataflowStats,
}

impl<'a> Analyzer<'a> {
    fn new(ws: &Workspace<'a>, cfg: &Config) -> Analyzer<'a> {
        let files = ws.files;
        let table = ws.symbols;
        let ann = Annotations::from_config(cfg);
        let structs = build_structs(files);
        let variants = build_variants(files);
        let assumed = parse_assumed(cfg);
        let mut call_map = BTreeMap::new();
        for (fid, f) in table.fns.iter().enumerate() {
            for c in ws.calls.calls.get(fid).into_iter().flatten() {
                if !c.callees.is_empty() {
                    call_map.insert((f.file, c.paren), c.callees.clone());
                }
            }
        }
        let n = table.fns.len();
        let mut params = Vec::with_capacity(n);
        let mut ret_prim = Vec::with_capacity(n);
        let mut ret_named = Vec::with_capacity(n);
        for f in &table.fns {
            let (p, r) = match (f.body, files.get(f.file)) {
                (Some((start, _)), Some(file)) => {
                    parse_signature(&file.tokens, start, f.self_ty.as_deref())
                }
                _ => (Vec::new(), None),
            };
            params.push(p);
            ret_prim.push(match &r {
                Some(FieldTy::Prim(t)) => Some(*t),
                _ => None,
            });
            // Only names the struct table can resolve: `impl Trait`,
            // generics, and collection types stay top.
            ret_named.push(match &r {
                Some(FieldTy::Named(s)) if structs.contains_key(s) => Some(s.clone()),
                _ => None,
            });
        }
        let mut base_entry = Vec::with_capacity(n);
        for (fid, f) in table.fns.iter().enumerate() {
            let mut row = Vec::new();
            for (pidx, p) in params.get(fid).into_iter().flatten().enumerate() {
                let mut v = match &p.ty {
                    Some(f) => AbsVal::of_field(f),
                    None => AbsVal::top(),
                };
                v.is_self = p.name == "self";
                if let Some(u) = ann.param_unit(f.self_ty.as_deref(), &f.name, &p.name) {
                    v.iv = meet(&v.iv, &u.range());
                    v.unit = u;
                }
                // The checked_* helpers' own bodies assume the bound
                // R002 proves at every call site (assume–guarantee).
                if pidx == 0 && p.name != "self" {
                    if let Some((bound, _)) = helper_bound(&f.name) {
                        v.iv = meet(&v.iv, &Interval::new(0, bound));
                    }
                }
                v.origin = Some(format!("parameter `{}` of `{}`", p.name, f.name));
                row.push(v);
            }
            base_entry.push(row);
        }
        Analyzer {
            files,
            table,
            ann,
            structs,
            variants,
            assumed,
            call_map,
            entry: base_entry.clone(),
            base_entry,
            observed: params.iter().map(|p| vec![None; p.len()]).collect(),
            observed_origin: params.iter().map(|p| vec![None; p.len()]).collect(),
            params,
            ret_prim,
            ret_named,
            summaries: vec![None; n],
            cur_file: 0,
            cur_rel: String::new(),
            cur_self: None,
            loops: Vec::new(),
            ret_acc: None,
            depth: 0,
            collect: false,
            findings: Vec::new(),
            seen: BTreeSet::new(),
            proven_casts: BTreeSet::new(),
            unproven_casts: BTreeSet::new(),
            proven_arith: BTreeSet::new(),
            unproven_arith: BTreeSet::new(),
            stats: DataflowStats::default(),
        }
    }

    /// Between passes: narrow each *private* function's entry to the
    /// join of the arguments observed at its call sites (sound because
    /// every non-test caller of a private function is in the analyzed
    /// set), then reset the observation tables for re-recording.
    /// `pub` functions keep their declared-type entries — callers
    /// outside the workspace are invisible.
    fn narrow_private_entries(&mut self) {
        for (fid, f) in self.table.fns.iter().enumerate() {
            let Some(base) = self.base_entry.get(fid) else {
                continue;
            };
            let obs_row = self.observed.get(fid).cloned().unwrap_or_default();
            let org_row = self.observed_origin.get(fid).cloned().unwrap_or_default();
            let mut row = base.clone();
            if !f.is_pub {
                for (pidx, slot) in row.iter_mut().enumerate() {
                    if let Some(Some(obs)) = obs_row.get(pidx) {
                        slot.iv = meet(&slot.iv, obs);
                        if let Some(Some(org)) = org_row.get(pidx) {
                            slot.origin = Some(org.clone());
                        }
                    }
                }
            }
            if let Some(e) = self.entry.get_mut(fid) {
                *e = row;
            }
        }
        for row in &mut self.observed {
            for slot in row.iter_mut() {
                *slot = None;
            }
        }
        for row in &mut self.observed_origin {
            for slot in row.iter_mut() {
                *slot = None;
            }
        }
    }

    /// The abstract value of a struct field read, intersected with any
    /// `assumed_fields` bound from `lint.toml`.
    fn field_val(&self, sname: &str, fname: &str, fty: &FieldTy) -> AbsVal {
        let mut v = AbsVal::of_field(fty);
        if let Some(max) = self.assumed.get(&(sname.to_string(), fname.to_string())) {
            v.iv = meet(&v.iv, &Interval::new(0, *max));
            v.origin = Some(format!("field `{sname}.{fname}` (assumed ≤ {max})"));
        }
        v
    }

    /// Walks one function body and returns its return-range summary.
    fn walk_fn(&mut self, fid: usize) -> Option<Interval> {
        let files = self.files;
        let f = self.table.fns.get(fid)?;
        let (start, _end) = f.body?;
        let file = files.get(f.file)?;
        self.cur_file = f.file;
        self.cur_rel = file.rel.clone();
        self.cur_self = f.self_ty.clone();
        self.loops.clear();
        self.ret_acc = None;
        self.depth = 0;
        let mut env = Env::default();
        let names: Vec<String> = self
            .params
            .get(fid)
            .into_iter()
            .flatten()
            .map(|p| p.name.clone())
            .collect();
        let vals: Vec<AbsVal> = self.entry.get(fid).cloned().unwrap_or_default();
        let mut has_self = false;
        for (name, val) in names.iter().zip(vals.iter()) {
            if name == "self" {
                has_self = true;
            }
            if name != "_" {
                env.vars.insert(name.clone(), val.clone());
            }
        }
        if has_self {
            if let Some(sname) = self.cur_self.clone() {
                let fields: Vec<(String, FieldTy)> = self
                    .structs
                    .get(&sname)
                    .into_iter()
                    .flatten()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                for (fname, fty) in fields {
                    let v = self.field_val(&sname, &fname, &fty);
                    env.vars.insert(format!("self.{fname}"), v);
                }
            }
        }
        let t = file.tokens.as_slice();
        let (_, tail) = self.walk_block(t, start, &mut env);
        let mut summary = self.ret_acc;
        if !env.dead {
            if let Some(v) = tail {
                summary = Some(match summary {
                    Some(s) => s.join(&v.iv),
                    None => v.iv,
                });
            }
        }
        let ret = self.ret_prim.get(fid).copied().flatten();
        match (summary, ret) {
            (Some(s), Some(ty)) => Some(s.clamp_to(ty)),
            (Some(s), None) => Some(s),
            (None, _) => None,
        }
    }
}

// Statement-level walking.
impl<'a> Analyzer<'a> {
    /// Walks the block whose `{` is at `open`; returns the index just
    /// past the matching `}` and the block's tail-expression value.
    fn walk_block(&mut self, t: &[Token], open: usize, env: &mut Env) -> (usize, Option<AbsVal>) {
        let close = match_delim(t, open, t.len());
        let mut i = skipc(t, open + 1);
        let mut tail: Option<AbsVal> = None;
        while i < close {
            if env.dead {
                break;
            }
            let (ni, v) = self.walk_stmt(t, i, close, env);
            // A value produced by the final statement (no trailing `;`)
            // is the block's tail expression.
            tail = if skipc(t, ni) >= close { v } else { None };
            // Guaranteed progress even on unmodelled constructs.
            i = if ni > i { ni } else { i + 1 };
            i = skipc(t, i);
        }
        (close + 1, tail)
    }

    /// Walks one statement starting at `i`; returns the next statement
    /// index and the statement's value when it was an expression.
    fn walk_stmt(
        &mut self,
        t: &[Token],
        i: usize,
        close: usize,
        env: &mut Env,
    ) -> (usize, Option<AbsVal>) {
        let Some(tok) = t.get(i) else {
            return (close, None);
        };
        match tok.text.as_str() {
            ";" => return (i + 1, None),
            "{" => {
                let (ni, v) = self.walk_block(t, i, env);
                return (ni, v);
            }
            "#" => {
                // Attribute: skip `#[…]` (or `#![…]`).
                let mut j = skipc(t, i + 1);
                if t.get(j).is_some_and(|x| x.is_op("!")) {
                    j = skipc(t, j + 1);
                }
                if t.get(j).is_some_and(|x| x.is_op("[")) {
                    return (match_delim(t, j, close) + 1, None);
                }
                return (i + 1, None);
            }
            _ => {}
        }
        if tok.kind == TokKind::Lifetime {
            // Loop label: `'outer: loop { … }`.
            let mut j = skipc(t, i + 1);
            if t.get(j).is_some_and(|x| x.is_op(":")) {
                j = skipc(t, j + 1);
            }
            return self.walk_stmt(t, j, close, env);
        }
        if tok.kind == TokKind::Ident {
            match tok.text.as_str() {
                "let" => return (self.walk_let(t, i, close, env), None),
                "if" => return self.walk_if(t, i, close, env),
                "match" => return self.walk_match(t, i, close, env),
                "while" => return (self.walk_while(t, i, close, env), None),
                "for" => return (self.walk_for(t, i, close, env), None),
                "loop" => return (self.walk_plain_loop(t, i, close, env), None),
                "unsafe" => {
                    let j = skipc(t, i + 1);
                    if t.get(j).is_some_and(|x| x.is_op("{")) {
                        let (ni, v) = self.walk_block(t, j, env);
                        return (ni, v);
                    }
                    return (j, None);
                }
                "return" => {
                    let semi = scan_top(t, i + 1, close, |x| x.is_op(";")).unwrap_or(close);
                    if skipc(t, i + 1) < semi {
                        let v = self.eval_expr(t, i + 1, semi, env);
                        self.note_return(&v);
                    }
                    env.dead = true;
                    return (semi + 1, None);
                }
                "break" | "continue" => {
                    let is_break = tok.text == "break";
                    let semi = scan_top(t, i + 1, close, |x| x.is_op(";")).unwrap_or(close);
                    // `break value` / `break 'label` — evaluate any value
                    // for its obligations, labels are skipped.
                    let j = skipc(t, i + 1);
                    if j < semi && !t.get(j).is_some_and(|x| x.kind == TokKind::Lifetime) {
                        let _ = self.eval_expr(t, j, semi, env);
                    }
                    let snapshot = env.clone();
                    if let Some(ctx) = self.loops.last_mut() {
                        if is_break {
                            ctx.brk.push(snapshot);
                        } else {
                            ctx.cont.push(snapshot);
                        }
                    }
                    env.dead = true;
                    return (semi + 1, None);
                }
                // Items nested in a body: skip them wholesale (nested
                // fns are separate symbols and walked on their own).
                "fn" | "struct" | "enum" | "impl" | "trait" | "mod" => {
                    return (skip_item(t, i, close), None);
                }
                "use" | "type" | "static" | "const" => {
                    let semi = scan_top(t, i + 1, close, |x| x.is_op(";")).unwrap_or(close);
                    return (semi + 1, None);
                }
                "assert" | "debug_assert" | "assert_eq" | "assert_ne" | "debug_assert_eq"
                | "debug_assert_ne"
                    if t.get(i + 1).is_some_and(|x| x.is_op("!")) =>
                {
                    return (self.walk_assert(t, i, close, env), None);
                }
                _ => {}
            }
        }
        // Assignment to a tracked place?
        if let Some(ni) = self.try_assign(t, i, close, env) {
            return (ni, None);
        }
        // Plain expression statement.
        let semi = scan_top(t, i, close, |x| x.is_op(";")).unwrap_or(close);
        let v = self.eval_expr(t, i, semi, env);
        if semi >= close {
            return (close, Some(v));
        }
        (semi + 1, None)
    }

    fn note_return(&mut self, v: &AbsVal) {
        self.ret_acc = Some(match self.ret_acc {
            Some(acc) => acc.join(&v.iv),
            None => v.iv,
        });
    }

    /// `let` statement, including `let … : ty = …`, tuple patterns,
    /// constructor patterns, and diverging `let … else { … }`.
    fn walk_let(&mut self, t: &[Token], i: usize, close: usize, env: &mut Env) -> usize {
        let semi = scan_top(t, i + 1, close, |x| x.is_op(";")).unwrap_or(close);
        let Some(eq) = scan_top(t, i + 1, semi, |x| x.is_op("=")) else {
            // `let x;` — declared, not initialized: unmodelled.
            return semi + 1;
        };
        // Pattern and optional declared type between `let` and `=`.
        let colon = scan_top(t, i + 1, eq, |x| x.is_op(":"));
        let pat_end = colon.unwrap_or(eq);
        let decl_ty = colon.and_then(|c| parse_field_ty(t, c + 1, eq));
        // Diverging `let PAT = expr else { … };`. An `else` preceded by
        // `}` belongs to an `if`/`else` chain in the initializer (Rust
        // forbids brace-ending initializers in let-else), not to us.
        let else_kw = scan_top(t, eq + 1, semi, |x| x.is_ident("else")).filter(|&ek| {
            let prev = skipc_back(t, eq + 1, ek);
            !t.get(prev).is_some_and(|x| x.is_op("}"))
        });
        let rhs_end = else_kw.unwrap_or(semi);
        let mut val = self.eval_expr(t, eq + 1, rhs_end, env);
        if let Some(ek) = else_kw {
            let b = skipc(t, ek + 1);
            if t.get(b).is_some_and(|x| x.is_op("{")) {
                // The else block diverges; nothing it does flows on.
                let mut scratch = env.clone();
                let _ = self.walk_block(t, b, &mut scratch);
            }
        }
        if let Some(FieldTy::Prim(ty)) = decl_ty {
            val.iv = val.iv.clamp_to(ty);
            val.ty = Some(ty);
        } else if let Some(FieldTy::Named(s)) = &decl_ty {
            if val.sty.is_none() {
                val.sty = Some(s.clone());
            }
        } else if let Some(FieldTy::Array(elem)) = decl_ty {
            if val.arr.is_none() {
                val.arr = Some(*elem);
            }
        }
        self.bind_pattern(t, i + 1, pat_end, &val, env);
        semi + 1
    }

    /// Binds the identifiers of a pattern span. A single binding gets
    /// the scrutinee's value (this makes `Some(x)` / `Ok(x)` work with
    /// the identity model of `Some`/`Ok`); multiple bindings each get
    /// top.
    fn bind_pattern(&mut self, t: &[Token], lo: usize, hi: usize, val: &AbsVal, env: &mut Env) {
        // A slice/array pattern over a known-element array binds every
        // identifier to the element type (`let [m0, m1, …] = self.0`).
        let s0 = skipc(t, lo);
        if t.get(s0).is_some_and(|x| x.is_op("[")) {
            if let Some(elem) = &val.arr {
                let close = match_delim(t, s0, hi);
                let mut j = s0 + 1;
                while j < close {
                    if let Some(tok) = t.get(j) {
                        if tok.kind == TokKind::Ident
                            && !matches!(tok.text.as_str(), "mut" | "ref" | "_")
                        {
                            env.vars.insert(tok.text.clone(), AbsVal::of_field(elem));
                        }
                    }
                    j += 1;
                }
                return;
            }
        }
        let mut names: Vec<String> = Vec::new();
        let mut j = lo;
        while j < hi {
            if let Some(tok) = t.get(j) {
                if tok.kind == TokKind::Ident
                    && !matches!(tok.text.as_str(), "mut" | "ref" | "_")
                    && tok
                        .text
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
                {
                    // Not a path segment of a constructor (`mod::Variant`).
                    let next = skipc(t, j + 1);
                    if !t.get(next).is_some_and(|x| x.is_op("::")) {
                        names.push(tok.text.clone());
                    }
                }
            }
            j += 1;
        }
        if names.len() == 1 {
            if let Some(name) = names.first() {
                let mut bound = val.clone();
                // A recorded `Enum::Variant(pat)` constructor types the
                // binding from the declared payload (the scrutinee's own
                // value is the enum, not the payload, so identity would
                // be wrong there anyway). `Some`/`Ok` have no `::` path
                // and keep the identity model.
                let mut k = skipc(t, lo);
                while k < hi {
                    let Some(seg1) = t.get(k).filter(|x| x.kind == TokKind::Ident) else {
                        k += 1;
                        continue;
                    };
                    let c1 = skipc(t, k + 1);
                    if !t.get(c1).is_some_and(|x| x.is_op("::")) {
                        k += 1;
                        continue;
                    }
                    let c2 = skipc(t, c1 + 1);
                    let Some(seg2) = t.get(c2).filter(|x| x.kind == TokKind::Ident) else {
                        k += 1;
                        continue;
                    };
                    if t.get(skipc(t, c2 + 1)).is_some_and(|x| x.is_op("(")) {
                        let key = format!("{}::{}", seg1.text, seg2.text);
                        if let Some(p) = self.variants.get(&key) {
                            bound = AbsVal::of_field(p);
                        }
                        break;
                    }
                    k += 1;
                }
                env.vars.insert(name.clone(), bound);
            }
        } else {
            for name in names {
                env.vars.insert(name, AbsVal::top());
            }
        }
    }

    /// Detects and handles `place = expr` / `place op= expr`; returns
    /// the next statement index on a hit.
    fn try_assign(&mut self, t: &[Token], i: usize, close: usize, env: &mut Env) -> Option<usize> {
        let mut j = skipc(t, i);
        while t.get(j).is_some_and(|x| x.is_op("*")) {
            j = skipc(t, j + 1);
        }
        let first = t.get(j)?;
        if first.kind != TokKind::Ident {
            return None;
        }
        let base = first.text.clone();
        if matches!(
            base.as_str(),
            "if" | "match" | "while" | "for" | "loop" | "return" | "break" | "continue"
        ) {
            return None;
        }
        j = skipc(t, j + 1);
        // Optional `.field` / `.0` / `[index]` suffixes.
        let mut field: Option<String> = None;
        let mut extended = false;
        loop {
            if t.get(j).is_some_and(|x| x.is_op(".")) {
                let f = skipc(t, j + 1);
                match t.get(f) {
                    Some(x) if x.kind == TokKind::Ident || x.kind == TokKind::Int => {
                        if field.is_none() && !extended {
                            field = Some(x.text.clone());
                        } else {
                            extended = true;
                        }
                        // A `(` after the field means a method call, not
                        // a place.
                        let after = skipc(t, f + 1);
                        if t.get(after).is_some_and(|x| x.is_op("(")) {
                            return None;
                        }
                        j = after;
                        continue;
                    }
                    _ => return None,
                }
            }
            if t.get(j).is_some_and(|x| x.is_op("[")) {
                let c = match_delim(t, j, close);
                // Evaluate the index for its obligations.
                let _ = self.eval_expr(t, j + 1, c, env);
                extended = true;
                j = skipc(t, c + 1);
                continue;
            }
            break;
        }
        let op = t.get(j)?;
        let ops = op.text.as_str();
        if op.kind != TokKind::Op
            || !matches!(
                ops,
                "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=" | "<<=" | ">>="
            )
        {
            return None;
        }
        let semi = scan_top(t, j + 1, close, |x| x.is_op(";")).unwrap_or(close);
        let rhs_start = skipc(t, j + 1);
        let rhs = self.eval_expr(t, j + 1, semi, env);
        let literal_rhs = t.get(rhs_start).is_some_and(|x| x.kind == TokKind::Int)
            && skipc(t, rhs_start + 1) >= semi;
        // The tracked key: a bare local or a `self.field` pseudo-var.
        let key = if base == "self" {
            field
                .as_ref()
                .filter(|_| !extended)
                .map(|f| format!("self.{f}"))
        } else if field.is_none() && !extended {
            Some(base.clone())
        } else {
            None
        };
        let old = key.as_ref().and_then(|k| env.vars.get(k)).cloned();
        let line = op.line;
        let new_val = match ops {
            "=" => {
                let mut v = rhs.clone();
                if let Some(o) = &old {
                    if let Some(ty) = o.ty {
                        v.iv = v.iv.clamp_to(ty);
                        v.ty = Some(ty);
                    }
                }
                Some(v)
            }
            _ => {
                let o = old.clone().unwrap_or_else(AbsVal::top);
                let base_op = ops.strip_suffix('=').unwrap_or(ops);
                Some(self.apply_binop(ops, base_op, &o, &rhs, line, literal_rhs, env))
            }
        };
        if let (Some(k), Some(v)) = (key, new_val) {
            env.vars.insert(k, v);
        }
        Some(semi + 1)
    }

    /// `assert!`-family macros: evaluate the arguments once, then fold
    /// the asserted condition into the environment (an assert that
    /// fails diverges, so past it the condition holds — this is how
    /// `debug_assert!(v <= 0xff)` feeds the cast proofs).
    fn walk_assert(&mut self, t: &[Token], i: usize, close: usize, env: &mut Env) -> usize {
        let Some(name) = t.get(i).map(|x| x.text.clone()) else {
            return i + 1;
        };
        let bang = skipc(t, i + 1);
        let open = skipc(t, bang + 1);
        if !t.get(open).is_some_and(|x| x.is_op("(")) {
            return bang + 1;
        }
        let c = match_delim(t, open, close.max(open));
        let args = split_commas(t, open + 1, c);
        for (s, e) in &args {
            let _ = self.eval_expr(t, *s, *e, env);
        }
        match name.as_str() {
            "assert" | "debug_assert" => {
                if let Some((s, e)) = args.first() {
                    *env = self.refine_cond(t, *s, *e, env, true);
                }
            }
            "assert_eq" | "debug_assert_eq" | "assert_ne" | "debug_assert_ne" => {
                if let (Some((ls, le)), Some((rs, re))) = (args.first(), args.get(1)) {
                    let mut scratch = env.clone();
                    let lv = self.quiet_eval(t, *ls, *le, &mut scratch);
                    let rv = self.quiet_eval(t, *rs, *re, &mut scratch);
                    let eq = name.ends_with("_eq");
                    self.refine_place(t, *ls, *le, if eq { "==" } else { "!=" }, &rv.iv, env);
                    self.refine_place(t, *rs, *re, if eq { "==" } else { "!=" }, &lv.iv, env);
                }
            }
            _ => {}
        }
        let semi = scan_top(t, c, close, |x| x.is_op(";")).unwrap_or(close);
        semi + 1
    }
}

/// Skips a nested item (`fn`, `struct`, `impl`, …): to its body's
/// closing brace or its terminating `;`, whichever comes first at
/// depth 0.
fn skip_item(t: &[Token], i: usize, close: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < close {
        if let Some(tok) = t.get(j) {
            match tok.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" if depth == 0 => return match_delim(t, j, close) + 1,
                ";" if depth == 0 => return j + 1,
                _ => {}
            }
        }
        j += 1;
    }
    close
}

// Control flow: branches, matches, loops, refinement.
impl<'a> Analyzer<'a> {
    /// Evaluates a span with finding collection off — used when a
    /// condition or assert argument has already been evaluated once and
    /// re-walking it must not duplicate obligations.
    fn quiet_eval(&mut self, t: &[Token], lo: usize, hi: usize, env: &mut Env) -> AbsVal {
        let saved = self.collect;
        self.collect = false;
        let v = self.eval_expr(t, lo, hi, env);
        self.collect = saved;
        v
    }

    /// `if` expression/statement; returns (next index, value).
    fn walk_if(
        &mut self,
        t: &[Token],
        i: usize,
        close: usize,
        env: &mut Env,
    ) -> (usize, Option<AbsVal>) {
        let cond_start = skipc(t, i + 1);
        let Some(brace) = scan_top(t, cond_start, close, |x| x.is_op("{")) else {
            return (close, None);
        };
        let (mut then_env, else_base) = if t.get(cond_start).is_some_and(|x| x.is_ident("let")) {
            // `if let PAT = expr { … }`: bind, no range refinement.
            let eq = scan_top(t, cond_start + 1, brace, |x| x.is_op("="));
            let mut te = env.clone();
            if let Some(eq) = eq {
                let val = self.eval_expr(t, eq + 1, brace, env);
                self.bind_pattern(t, cond_start + 1, eq, &val, &mut te);
            }
            (te, env.clone())
        } else {
            // Evaluate once for obligations, then refine both ways.
            let _ = self.eval_expr(t, cond_start, brace, env);
            (
                self.refine_cond(t, cond_start, brace, env, true),
                self.refine_cond(t, cond_start, brace, env, false),
            )
        };
        let (after_then, then_val) = self.walk_block(t, brace, &mut then_env);
        let mut else_env = else_base;
        let mut else_val: Option<AbsVal> = None;
        let ek = skipc(t, after_then);
        let mut next = after_then;
        if t.get(ek).is_some_and(|x| x.is_ident("else")) {
            let b = skipc(t, ek + 1);
            if t.get(b).is_some_and(|x| x.is_ident("if")) {
                let (ni, v) = self.walk_if(t, b, close, &mut else_env);
                next = ni;
                else_val = v;
            } else if t.get(b).is_some_and(|x| x.is_op("{")) {
                let (ni, v) = self.walk_block(t, b, &mut else_env);
                next = ni;
                else_val = v;
            }
        }
        *env = join_env(&then_env, &else_env);
        let val = match (then_val, else_val) {
            (Some(a), Some(b)) => Some(a.join(&b)),
            (Some(a), None) if else_env.dead => Some(a),
            (None, Some(b)) if then_env.dead => Some(b),
            _ => None,
        };
        (next, val)
    }

    /// `match` expression; refines the scrutinee per arm for literal
    /// and range patterns, binds single-identifier constructor
    /// patterns, joins the non-dead arm environments.
    fn walk_match(
        &mut self,
        t: &[Token],
        i: usize,
        close: usize,
        env: &mut Env,
    ) -> (usize, Option<AbsVal>) {
        let scrut_start = skipc(t, i + 1);
        let Some(brace) = scan_top(t, scrut_start, close, |x| x.is_op("{")) else {
            return (close, None);
        };
        let scrut = self.eval_expr(t, scrut_start, brace, env);
        let mclose = match_delim(t, brace, close.max(brace));
        let mut out: Option<Env> = None;
        let mut val: Option<AbsVal> = None;
        let mut j = skipc(t, brace + 1);
        while j < mclose {
            let Some(arrow) = scan_top(t, j, mclose, |x| x.is_op("=>")) else {
                break;
            };
            // Split an optional `if` guard off the pattern.
            let guard = scan_top(t, j, arrow, |x| x.is_ident("if"));
            let pat_end = guard.unwrap_or(arrow);
            let mut arm = env.clone();
            self.apply_arm_pattern(t, j, pat_end, scrut_start, brace, &scrut, &mut arm);
            if let Some(g) = guard {
                let _ = self.quiet_eval(t, g + 1, arrow, &mut arm.clone());
                arm = self.refine_cond(t, g + 1, arrow, &arm, true);
            }
            // Arm body: a block, or an expression up to the top `,`.
            let body = skipc(t, arrow + 1);
            let arm_end;
            let v = if t.get(body).is_some_and(|x| x.is_op("{")) {
                let (ni, bv) = self.walk_block(t, body, &mut arm);
                arm_end = ni;
                bv
            } else {
                let comma = scan_top(t, body, mclose, |x| x.is_op(",")).unwrap_or(mclose);
                let bv = self.eval_expr(t, body, comma, &mut arm);
                arm_end = comma;
                if arm.dead {
                    None
                } else {
                    Some(bv)
                }
            };
            if !arm.dead {
                out = Some(match out {
                    Some(o) => join_env(&o, &arm),
                    None => arm,
                });
                val = match (val, v) {
                    (Some(a), Some(b)) => Some(a.join(&b)),
                    (None, b) => b,
                    (a, None) => a,
                };
            }
            j = skipc(t, arm_end);
            if t.get(j).is_some_and(|x| x.is_op(",")) {
                j = skipc(t, j + 1);
            }
        }
        *env = out.unwrap_or_else(|| {
            let mut e = env.clone();
            e.dead = true;
            e
        });
        (mclose + 1, val)
    }

    /// Applies one match-arm pattern: refine on integer/range literals
    /// (including `|` alternatives), bind identifiers.
    #[allow(clippy::too_many_arguments)]
    fn apply_arm_pattern(
        &mut self,
        t: &[Token],
        lo: usize,
        hi: usize,
        scrut_lo: usize,
        scrut_hi: usize,
        scrut: &AbsVal,
        env: &mut Env,
    ) {
        // `|` alternatives: the arm env is the join of per-alternative
        // refinements.
        let mut alts = Vec::new();
        let mut start = lo;
        let mut j = lo;
        let mut depth = 0usize;
        while j < hi {
            match t.get(j).map(|x| x.text.as_str()) {
                Some("(") | Some("[") => depth += 1,
                Some(")") | Some("]") => depth = depth.saturating_sub(1),
                Some("|") if depth == 0 => {
                    alts.push((start, j));
                    start = j + 1;
                }
                _ => {}
            }
            j += 1;
        }
        alts.push((start, hi));
        if alts.len() > 1 {
            let mut joined: Option<Env> = None;
            for (s, e) in alts {
                let mut one = env.clone();
                self.apply_arm_pattern(t, s, e, scrut_lo, scrut_hi, scrut, &mut one);
                if !one.dead {
                    joined = Some(match joined {
                        Some(o) => join_env(&o, &one),
                        None => one,
                    });
                }
            }
            if let Some(o) = joined {
                *env = o;
            } else {
                env.dead = true;
            }
            return;
        }
        let s = skipc(t, lo);
        let first = match t.get(s) {
            Some(x) => x,
            None => return,
        };
        // Integer literal or literal range: refine the scrutinee place.
        if first.kind == TokKind::Int {
            if let Some((v, _)) = parse_int(&first.text) {
                let next = skipc(t, s + 1);
                let range_op = t
                    .get(next)
                    .filter(|x| matches!(x.text.as_str(), ".." | "..="))
                    .map(|x| x.text.clone());
                if let Some(op) = range_op {
                    let he = skipc(t, next + 1);
                    if let Some((hv, _)) = t
                        .get(he)
                        .filter(|x| x.kind == TokKind::Int)
                        .and_then(|x| parse_int(&x.text))
                    {
                        let hi_inc = if op == ".." { hv.saturating_sub(1) } else { hv };
                        let range = Interval::new(v, hi_inc);
                        self.refine_place_iv(t, scrut_lo, scrut_hi, "range", &range, env);
                        return;
                    }
                }
                self.refine_place_iv(t, scrut_lo, scrut_hi, "==", &Interval::exact(v), env);
                // An exact pattern over a scrutinee that cannot hold it
                // is a dead arm.
                if scrut.iv.refine_eq(&Interval::exact(v)).is_none() {
                    env.dead = true;
                }
            }
            return;
        }
        // Identifier patterns: `_`, a binding, or a constructor with
        // bindings inside.
        if first.kind == TokKind::Ident || first.is_op("(") {
            self.bind_pattern(t, s, hi, scrut, env);
        }
    }

    /// `while` / `while let` loops.
    fn walk_while(&mut self, t: &[Token], i: usize, close: usize, env: &mut Env) -> usize {
        let cond_start = skipc(t, i + 1);
        let Some(brace) = scan_top(t, cond_start, close, |x| x.is_op("{")) else {
            return close;
        };
        let kind = if t.get(cond_start).is_some_and(|x| x.is_ident("let")) {
            let eq = scan_top(t, cond_start + 1, brace, |x| x.is_op("="));
            let mut binds = Vec::new();
            if let Some(eq) = eq {
                let mut probe = Env::default();
                self.bind_pattern(t, cond_start + 1, eq, &AbsVal::top(), &mut probe);
                binds = probe.vars.keys().cloned().collect();
                return self.run_loop(
                    t,
                    brace,
                    LoopKind::WhileLet {
                        binds,
                        scrut: (eq + 1, brace),
                    },
                    env,
                );
            }
            let _ = binds;
            LoopKind::Plain
        } else {
            LoopKind::While {
                cond: (cond_start, brace),
            }
        };
        self.run_loop(t, brace, kind, env)
    }

    /// `for PAT in iter` loops: range iterators get a real interval for
    /// the loop variable, anything else binds top.
    fn walk_for(&mut self, t: &[Token], i: usize, close: usize, env: &mut Env) -> usize {
        let pat_start = skipc(t, i + 1);
        let Some(in_kw) = scan_top(t, pat_start, close, |x| x.is_ident("in")) else {
            return close;
        };
        let Some(brace) = scan_top(t, in_kw + 1, close, |x| x.is_op("{")) else {
            return close;
        };
        // Single-identifier pattern → tracked var; tuples bind top.
        let p = skipc(t, pat_start);
        let mut var = None;
        if skipc(t, p + 1) >= in_kw {
            if let Some(x) = t.get(p).filter(|x| x.kind == TokKind::Ident) {
                if x.text != "_" {
                    var = Some(x.text.clone());
                }
            }
        }
        let val = self.eval_for_iter(t, in_kw + 1, brace, env);
        if var.is_none() {
            // Bind every tuple-pattern identifier to top for the body.
            let mut probe = Env::default();
            self.bind_pattern(t, pat_start, in_kw, &AbsVal::top(), &mut probe);
            let mut env2 = env.clone();
            for k in probe.vars.keys() {
                env2.vars.insert(k.clone(), AbsVal::top());
            }
            let ni = self.run_loop(t, brace, LoopKind::For { var: None, val }, &mut env2);
            // Drop the bindings going out of scope.
            env2.vars
                .retain(|k, _| env.vars.contains_key(k) || probe.vars.contains_key(k));
            for k in probe.vars.keys() {
                env2.vars.remove(k);
            }
            *env = env2;
            return ni;
        }
        self.run_loop(t, brace, LoopKind::For { var, val }, env)
    }

    /// The abstract value of a `for`-loop iterator expression:
    /// `lo..hi` / `lo..=hi` ranges produce the hull of the iteration
    /// space; `.rev()` / `.enumerate()` / `.step_by(..)` suffixes are
    /// stripped (they do not grow it); everything else is top (an array
    /// iterator yields its element type's top).
    fn eval_for_iter(&mut self, t: &[Token], lo: usize, hi: usize, env: &mut Env) -> AbsVal {
        let mut lo = skipc(t, lo);
        let mut end = hi;
        // Strip trailing `.method(…)` suffixes that keep the range and
        // any fully-enclosing parentheses (`(0..32).rev()`).
        loop {
            let last = skipc_back(t, lo, end);
            if t.get(lo).is_some_and(|x| x.is_op("("))
                && last > lo
                && match_delim(t, lo, end) == last
            {
                lo = skipc(t, lo + 1);
                end = last;
                continue;
            }
            let last = skipc_back(t, lo, end);
            if !t.get(last).is_some_and(|x| x.is_op(")")) {
                break;
            }
            let Some(open) = open_of(t, lo, last) else {
                break;
            };
            let namei = skipc_back(t, lo, open);
            let Some(name) = t.get(namei).filter(|x| x.kind == TokKind::Ident) else {
                break;
            };
            let doti = skipc_back(t, lo, namei);
            if !t.get(doti).is_some_and(|x| x.is_op(".")) {
                break;
            }
            if !matches!(
                name.text.as_str(),
                "rev" | "enumerate" | "step_by" | "take" | "copied" | "cloned" | "iter"
            ) {
                break;
            }
            end = doti;
        }
        let lo = lo;
        // A top-level `..` / `..=` marks a range literal.
        if let Some(dots) = scan_top(t, lo, end, |x| matches!(x.text.as_str(), ".." | "..=")) {
            let inclusive = t.get(dots).is_some_and(|x| x.text == "..=");
            let l = self.eval_expr(t, lo, dots, env);
            let r = self.eval_expr(t, dots + 1, end, env);
            let hi_b = if inclusive {
                r.iv.hi
            } else {
                r.iv.hi.saturating_sub(1)
            };
            return AbsVal {
                iv: Interval::new(l.iv.lo, hi_b.max(l.iv.lo)),
                ty: l.ty.or(r.ty),
                unit: if l.unit == Unit::Opaque {
                    r.unit
                } else {
                    l.unit
                },
                ..AbsVal::top()
            };
        }
        let v = self.eval_expr(t, lo, end, env);
        if let Some(elem) = &v.arr {
            return AbsVal::of_field(elem);
        }
        AbsVal::top()
    }

    /// `loop { … }`.
    fn walk_plain_loop(&mut self, t: &[Token], i: usize, close: usize, env: &mut Env) -> usize {
        let Some(brace) = scan_top(t, i + 1, close, |x| x.is_op("{")) else {
            return close;
        };
        self.run_loop(t, brace, LoopKind::Plain, env)
    }

    /// The loop fixpoint: iterate the body under widening with
    /// collection off, then run one collecting pass at the stable head
    /// and compute the exit environment from the loop kind.
    fn run_loop(&mut self, t: &[Token], brace: usize, kind: LoopKind, env: &mut Env) -> usize {
        let close = match_delim(t, brace, t.len());
        let line = t.get(brace).map(|x| x.line).unwrap_or(0);
        let origin = format!("loop at {}:{}", self.cur_rel, line);
        let saved = self.collect;
        self.collect = false;
        let mut head = env.clone();
        let mut iters = 0usize;
        loop {
            iters += 1;
            let mut be = self.loop_body_entry(t, &kind, &head, &origin);
            self.loops.push(LoopCtx::default());
            let _ = self.walk_block(t, brace, &mut be);
            let ctx = self.loops.pop().unwrap_or_default();
            for c in &ctx.cont {
                be = join_env(&be, c);
            }
            let next = join_env(env, &be);
            let (w, changed) = widen_env(&head, &next, &origin);
            head = w;
            if !changed || iters >= MAX_LOOP_ITERS {
                break;
            }
        }
        self.collect = saved;
        // One collecting pass at the stable head: this is where body
        // obligations are checked against the widened ranges.
        if let LoopKind::While { cond } = &kind {
            let mut scratch = head.clone();
            let _ = self.eval_expr(t, cond.0, cond.1, &mut scratch);
        }
        let mut be = self.loop_body_entry(t, &kind, &head, &origin);
        self.loops.push(LoopCtx::default());
        let _ = self.walk_block(t, brace, &mut be);
        let ctx = self.loops.pop().unwrap_or_default();
        for c in &ctx.cont {
            be = join_env(&be, c);
        }
        // Exit environment.
        let mut out = match &kind {
            LoopKind::While { cond } => {
                let h = self.refine_cond(t, cond.0, cond.1, &head, false);
                if be.dead {
                    h
                } else {
                    join_env(
                        &h,
                        &Env {
                            dead: false,
                            ..be.clone()
                        },
                    )
                }
            }
            LoopKind::For { .. } | LoopKind::WhileLet { .. } => join_env(env, &be),
            LoopKind::Plain => {
                let mut d = env.clone();
                d.dead = true;
                d
            }
        };
        for b in &ctx.brk {
            out = join_env(&out, b);
        }
        // For/while-let loop variables go out of scope.
        if let LoopKind::For { var: Some(v), .. } = &kind {
            if !env.vars.contains_key(v) {
                out.vars.remove(v);
            }
        }
        *env = out;
        close + 1
    }

    /// The environment the loop body starts each iteration with.
    fn loop_body_entry(&mut self, t: &[Token], kind: &LoopKind, head: &Env, origin: &str) -> Env {
        match kind {
            LoopKind::For { var, val } => {
                let mut e = head.clone();
                if let Some(v) = var {
                    let mut lv = val.clone();
                    if lv.origin.is_none() {
                        lv.origin = Some(origin.to_string());
                    }
                    e.vars.insert(v.clone(), lv);
                }
                e
            }
            LoopKind::While { cond } => self.refine_cond(t, cond.0, cond.1, head, true),
            LoopKind::WhileLet { binds, scrut } => {
                let mut e = head.clone();
                let val = {
                    let mut scratch = head.clone();
                    self.eval_expr(t, scrut.0, scrut.1, &mut scratch)
                };
                if binds.len() == 1 {
                    if let Some(b) = binds.first() {
                        e.vars.insert(b.clone(), val);
                    }
                } else {
                    for b in binds {
                        e.vars.insert(b.clone(), AbsVal::top());
                    }
                }
                e
            }
            LoopKind::Plain => head.clone(),
        }
    }

    /// Refines `env` under the assumption that the condition in
    /// `[lo, hi)` evaluates to `assume`. Handles `!`, `&&`, `||`,
    /// parenthesisation, and comparisons against tracked places; runs
    /// with collection off (the caller evaluates the condition once for
    /// obligations).
    fn refine_cond(&mut self, t: &[Token], lo: usize, hi: usize, env: &Env, assume: bool) -> Env {
        let saved = self.collect;
        self.collect = false;
        let out = self.refine_inner(t, lo, hi, env, assume);
        self.collect = saved;
        out
    }

    fn refine_inner(&mut self, t: &[Token], lo: usize, hi: usize, env: &Env, assume: bool) -> Env {
        if env.dead {
            return env.clone();
        }
        let mut lo = skipc(t, lo);
        let mut hi = hi;
        // Trim a fully-enclosing parenthesis.
        loop {
            let last = skipc_back(t, lo, hi);
            if t.get(lo).is_some_and(|x| x.is_op("("))
                && last > lo
                && match_delim(t, lo, hi) == last
            {
                lo = skipc(t, lo + 1);
                hi = last;
            } else {
                break;
            }
        }
        if lo >= hi {
            return env.clone();
        }
        if t.get(lo).is_some_and(|x| x.is_op("!")) {
            return self.refine_inner(t, lo + 1, hi, env, !assume);
        }
        // `||` then `&&` at top level (|| binds looser).
        for (op, split_on_assume) in [("||", false), ("&&", true)] {
            let mut parts = Vec::new();
            let mut start = lo;
            let mut j = lo;
            let mut depth = 0usize;
            while j < hi {
                match t.get(j).map(|x| x.text.as_str()) {
                    Some("(") | Some("[") | Some("{") => depth += 1,
                    Some(")") | Some("]") | Some("}") => depth = depth.saturating_sub(1),
                    Some(o) if o == op && depth == 0 => {
                        parts.push((start, j));
                        start = j + 1;
                    }
                    _ => {}
                }
                j += 1;
            }
            if !parts.is_empty() {
                parts.push((start, hi));
                // assume(a || b) joins the branches; refute(a || b)
                // refutes each in sequence (and dually for `&&`).
                if assume == split_on_assume {
                    let mut e = env.clone();
                    for (s, x) in parts {
                        e = self.refine_inner(t, s, x, &e, assume);
                    }
                    return e;
                }
                let mut joined: Option<Env> = None;
                for (s, x) in parts {
                    let one = self.refine_inner(t, s, x, env, assume);
                    if !one.dead {
                        joined = Some(match joined {
                            Some(o) => join_env(&o, &one),
                            None => one,
                        });
                    }
                }
                return joined.unwrap_or_else(|| {
                    let mut d = env.clone();
                    d.dead = true;
                    d
                });
            }
        }
        // A single comparison.
        let Some(cmp) = scan_top(t, lo, hi, |x| {
            x.kind == TokKind::Op
                && matches!(x.text.as_str(), "==" | "!=" | "<=" | ">=" | "<" | ">")
        }) else {
            return env.clone();
        };
        let op = t.get(cmp).map(|x| x.text.clone()).unwrap_or_default();
        let mut scratch = env.clone();
        let lv = self.eval_expr(t, lo, cmp, &mut scratch);
        let rv = self.eval_expr(t, cmp + 1, hi, &mut scratch);
        let eff = if assume {
            op.clone()
        } else {
            negate_cmp(&op).to_string()
        };
        let mut out = env.clone();
        self.refine_place(t, lo, cmp, &eff, &rv.iv, &mut out);
        self.refine_place(t, cmp + 1, hi, &converse_cmp(&eff), &lv.iv, &mut out);
        out
    }

    /// If `[lo, hi)` is a tracked place (`x` or `self.f`), refine its
    /// interval under `place <op> bound`; an infeasible refinement
    /// kills the environment.
    fn refine_place(
        &mut self,
        t: &[Token],
        lo: usize,
        hi: usize,
        op: &str,
        bound: &Interval,
        env: &mut Env,
    ) {
        self.refine_place_iv(t, lo, hi, op, bound, env);
    }

    fn refine_place_iv(
        &mut self,
        t: &[Token],
        lo: usize,
        hi: usize,
        op: &str,
        bound: &Interval,
        env: &mut Env,
    ) {
        let Some(key) = place_key(t, lo, hi) else {
            return;
        };
        let Some(cur) = env.vars.get(&key) else {
            return;
        };
        let refined = match op {
            "<" => cur.iv.refine_lt(bound),
            "<=" => cur.iv.refine_le(bound),
            ">" => cur.iv.refine_gt(bound),
            ">=" => cur.iv.refine_ge(bound),
            "==" => cur.iv.refine_eq(bound),
            "!=" => cur.iv.refine_ne(bound),
            "range" => cur.iv.refine_eq(bound),
            _ => return,
        };
        match refined {
            Some(iv) => {
                if let Some(slot) = env.vars.get_mut(&key) {
                    slot.iv = iv;
                }
            }
            None => env.dead = true,
        }
    }
}

/// Last non-comment token index in `[lo, hi)` (hi exclusive), or `lo`.
fn skipc_back(t: &[Token], lo: usize, hi: usize) -> usize {
    let mut j = hi;
    while j > lo {
        j -= 1;
        if t.get(j).is_some_and(|x| !is_comment(x)) {
            return j;
        }
    }
    lo
}

/// Index of the `(` matching the `)` at `close`, scanning back to `lo`.
fn open_of(t: &[Token], lo: usize, close: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut j = close + 1;
    while j > lo {
        j -= 1;
        match t.get(j).map(|x| x.text.as_str()) {
            Some(")") => depth += 1,
            Some("(") => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// The tracked-place key of a span: a bare identifier (`x`) or a
/// `self.field` access (`self.f`). Anything else is not refinable.
fn place_key(t: &[Token], lo: usize, hi: usize) -> Option<String> {
    let a = skipc(t, lo);
    let first = t.get(a)?;
    if first.kind != TokKind::Ident {
        return None;
    }
    let b = skipc(t, a + 1);
    if b >= hi {
        return Some(first.text.clone());
    }
    if first.text == "self" && t.get(b).is_some_and(|x| x.is_op(".")) {
        let c = skipc(t, b + 1);
        let f = t.get(c)?;
        if (f.kind == TokKind::Ident || f.kind == TokKind::Int) && skipc(t, c + 1) >= hi {
            return Some(format!("self.{}", f.text));
        }
    }
    None
}

/// The comparison that holds when `op` is false.
fn negate_cmp(op: &str) -> &'static str {
    match op {
        "==" => "!=",
        "!=" => "==",
        "<" => ">=",
        "<=" => ">",
        ">" => "<=",
        ">=" => "<",
        _ => "?",
    }
}

/// The comparison seen from the right operand (`a < b` ⇔ `b > a`).
fn converse_cmp(op: &str) -> String {
    match op {
        "<" => ">",
        "<=" => ">=",
        ">" => "<",
        ">=" => "<=",
        o => o,
    }
    .to_string()
}

/// Binary operator precedence (0 = not a binary operator here).
fn prec(op: &Token) -> u8 {
    if op.kind != TokKind::Op {
        return 0;
    }
    match op.text.as_str() {
        "*" | "/" | "%" => 9,
        "+" | "-" => 8,
        "<<" | ">>" => 7,
        "&" => 6,
        "^" => 5,
        "|" => 4,
        "==" | "!=" | "<" | "<=" | ">" | ">=" => 3,
        "&&" => 2,
        "||" => 1,
        _ => 0,
    }
}

// Expression evaluation.
impl<'a> Analyzer<'a> {
    /// Evaluates the expression spanning `[lo, hi)`.
    fn eval_expr(&mut self, t: &[Token], lo: usize, hi: usize, env: &mut Env) -> AbsVal {
        if self.depth >= MAX_DEPTH {
            return AbsVal::top();
        }
        self.depth += 1;
        let mut i = lo;
        let v = self.eval_binary(t, &mut i, hi, env, 1);
        self.depth = self.depth.saturating_sub(1);
        v
    }

    /// Precedence-climbing binary expression parser/evaluator.
    fn eval_binary(
        &mut self,
        t: &[Token],
        i: &mut usize,
        end: usize,
        env: &mut Env,
        min_prec: u8,
    ) -> AbsVal {
        let mut lhs = self.eval_unary(t, i, end, env);
        loop {
            let j = skipc(t, *i);
            if j >= end {
                break;
            }
            let Some(op) = t.get(j) else { break };
            let p = prec(op);
            if p == 0 || p < min_prec {
                break;
            }
            let op_text = op.text.clone();
            let line = op.line;
            *i = j + 1;
            let rhs_start = skipc(t, *i);
            *i = rhs_start;
            let rhs = self.eval_binary(t, i, end, env, p + 1);
            let literal_rhs =
                t.get(rhs_start).is_some_and(|x| x.kind == TokKind::Int) && *i <= rhs_start + 1;
            lhs = self.apply_binop(&op_text, &op_text, &lhs, &rhs, line, literal_rhs, env);
        }
        lhs
    }

    /// Applies one binary operator: transfer function, unit algebra,
    /// and the shift/arith obligations. `key_op` is the exact operator
    /// spelling used for L006 discharge keys (`"<<"` vs `"<<="`),
    /// `op` its semantic base.
    #[allow(clippy::too_many_arguments)]
    fn apply_binop(
        &mut self,
        key_op: &str,
        op: &str,
        l: &AbsVal,
        r: &AbsVal,
        line: usize,
        literal_rhs: bool,
        _env: &mut Env,
    ) -> AbsVal {
        let op = op.strip_suffix('=').filter(|b| !b.is_empty()).unwrap_or(op);
        let ty = l.ty.or(r.ty);
        let origin = l.origin.clone().or_else(|| r.origin.clone());
        let degrade = |raw: Option<Interval>| match (raw, ty) {
            (Some(v), Some(tt)) => v.clamp_to(tt),
            (Some(v), None) => v,
            (None, Some(tt)) => Interval::top_of(tt),
            (None, None) => TOP,
        };
        match op {
            "<<" | ">>" => {
                if !literal_rhs {
                    self.obligation_shift(line, key_op, l, r);
                }
                let raw = if op == "<<" {
                    l.iv.shl(&r.iv)
                } else {
                    Some(l.iv.shr(&r.iv))
                };
                let iv = match (raw, l.ty) {
                    (Some(v), Some(tt)) => v.clamp_to(tt),
                    (Some(v), None) => v,
                    (None, Some(tt)) => Interval::top_of(tt),
                    (None, None) => TOP,
                };
                AbsVal {
                    iv,
                    ty: l.ty,
                    origin,
                    ..AbsVal::top()
                }
            }
            "+" | "-" => {
                let unit = match l.unit.combine_linear(r.unit) {
                    Ok(u) => u,
                    Err((a, b)) => {
                        self.unit_mix_finding(line, key_op, a, b, l, r);
                        Unit::Opaque
                    }
                };
                let raw = if op == "+" {
                    l.iv.add(&r.iv)
                } else {
                    l.iv.sub(&r.iv)
                };
                self.record_arith(line, key_op, raw, ty);
                AbsVal {
                    iv: degrade(raw),
                    ty,
                    unit,
                    origin,
                    ..AbsVal::top()
                }
            }
            "*" => {
                let raw = l.iv.mul(&r.iv);
                self.record_arith(line, key_op, raw, ty);
                AbsVal {
                    iv: degrade(raw),
                    ty,
                    origin,
                    ..AbsVal::top()
                }
            }
            "/" => AbsVal {
                iv: l.iv.div(&r.iv),
                ty,
                origin,
                ..AbsVal::top()
            },
            "%" => AbsVal {
                iv: l.iv.rem(&r.iv),
                ty,
                origin,
                ..AbsVal::top()
            },
            "&" => AbsVal {
                iv: l.iv.bitand(&r.iv),
                ty,
                origin,
                ..AbsVal::top()
            },
            "|" => AbsVal {
                iv: l.iv.bitor(&r.iv).clamp_to(ty.unwrap_or(Ty::U128)),
                ty,
                origin,
                ..AbsVal::top()
            },
            "^" => AbsVal {
                iv: l.iv.bitxor(&r.iv).clamp_to(ty.unwrap_or(Ty::U128)),
                ty,
                origin,
                ..AbsVal::top()
            },
            // Comparisons and boolean connectives yield booleans.
            _ => AbsVal::top(),
        }
    }

    /// Unary operators, closures, and the primary/postfix chain.
    fn eval_unary(&mut self, t: &[Token], i: &mut usize, end: usize, env: &mut Env) -> AbsVal {
        let j = skipc(t, *i);
        *i = j;
        if j >= end {
            return AbsVal::top();
        }
        let Some(tok) = t.get(j) else {
            return AbsVal::top();
        };
        match tok.text.as_str() {
            "!" | "-" => {
                *i = j + 1;
                let v = self.eval_unary(t, i, end, env);
                return AbsVal {
                    iv: v.ty.map(Interval::top_of).unwrap_or(TOP),
                    ty: v.ty,
                    ..AbsVal::top()
                };
            }
            "&" => {
                *i = j + 1;
                let k = skipc(t, *i);
                if t.get(k).is_some_and(|x| x.is_ident("mut")) {
                    *i = k + 1;
                }
                return self.eval_unary(t, i, end, env);
            }
            "*" => {
                *i = j + 1;
                return self.eval_unary(t, i, end, env);
            }
            "move" => {
                *i = j + 1;
                return self.eval_unary(t, i, end, env);
            }
            "||" => {
                *i = j + 1;
                return self.eval_closure_body(t, i, end, env, Vec::new());
            }
            "|" => {
                // Closure: bind the parameters, walk the body on a
                // scratch environment, return top.
                let mut k = j + 1;
                let mut names = Vec::new();
                while k < end {
                    match t.get(k) {
                        Some(x) if x.is_op("|") => break,
                        Some(x)
                            if x.kind == TokKind::Ident
                                && !matches!(x.text.as_str(), "mut" | "ref" | "_") =>
                        {
                            // Only bare parameter names (skip type paths
                            // after `:`).
                            let prev = skipc_back(t, j + 1, k);
                            if !t.get(prev).is_some_and(|x| x.is_op(":") || x.is_op("::")) {
                                names.push(x.text.clone());
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                *i = k + 1;
                return self.eval_closure_body(t, i, end, env, names);
            }
            _ => {}
        }
        self.eval_primary(t, i, end, env)
    }

    /// A closure's body: walked on a clone of the environment (the
    /// capture-by-ref effects on tracked integers are rare enough to
    /// ignore; obligations inside the body are still collected).
    fn eval_closure_body(
        &mut self,
        t: &[Token],
        i: &mut usize,
        end: usize,
        env: &Env,
        params: Vec<String>,
    ) -> AbsVal {
        // Skip an optional `-> Ty` annotation.
        let mut j = skipc(t, *i);
        if t.get(j).is_some_and(|x| x.is_op("->")) {
            j = skipc(t, j + 1);
            while j < end
                && !t
                    .get(j)
                    .is_some_and(|x| x.is_op("{") || x.is_op(",") || x.is_op(")"))
            {
                j += 1;
            }
        }
        let mut scratch = env.clone();
        for p in params {
            scratch.vars.insert(p, AbsVal::top());
        }
        if t.get(j).is_some_and(|x| x.is_op("{")) {
            let (ni, _) = self.walk_block(t, j, &mut scratch);
            *i = ni;
        } else {
            let mut k = j;
            let _ = self.eval_binary(t, &mut k, end, &mut scratch, 1);
            *i = k;
        }
        AbsVal::top()
    }
}

// Primary expressions, postfix chains, calls, and obligations.
impl<'a> Analyzer<'a> {
    fn eval_primary(&mut self, t: &[Token], i: &mut usize, end: usize, env: &mut Env) -> AbsVal {
        let j = skipc(t, *i);
        *i = j;
        if j >= end {
            return AbsVal::top();
        }
        let Some(tok) = t.get(j) else {
            return AbsVal::top();
        };
        let mut val = match tok.kind {
            TokKind::Int => {
                *i = j + 1;
                match parse_int(&tok.text) {
                    Some((v, ty)) => AbsVal::exact(v, ty),
                    None => AbsVal::top(),
                }
            }
            TokKind::Float | TokKind::Str | TokKind::Char | TokKind::Lifetime => {
                *i = j + 1;
                AbsVal::top()
            }
            TokKind::Op => match tok.text.as_str() {
                "(" => {
                    let c = match_delim(t, j, end);
                    let spans = split_commas(t, j + 1, c);
                    let v = if spans.len() == 1 {
                        spans
                            .first()
                            .map(|(s, e)| self.eval_expr(t, *s, *e, env))
                            .unwrap_or_else(AbsVal::top)
                    } else {
                        for (s, e) in &spans {
                            let _ = self.eval_expr(t, *s, *e, env);
                        }
                        AbsVal::top()
                    };
                    *i = c + 1;
                    v
                }
                "[" => {
                    let c = match_delim(t, j, end);
                    // `[a, b, …]` or `[elem; N]`.
                    let semi = scan_top(t, j + 1, c, |x| x.is_op(";"));
                    let mut elem_ty = None;
                    if let Some(s) = semi {
                        let v = self.eval_expr(t, j + 1, s, env);
                        elem_ty = v.ty;
                        let _ = self.eval_expr(t, s + 1, c, env);
                    } else {
                        for (idx, (s, e)) in split_commas(t, j + 1, c).iter().enumerate() {
                            let v = self.eval_expr(t, *s, *e, env);
                            if idx == 0 {
                                elem_ty = v.ty;
                            }
                        }
                    }
                    *i = c + 1;
                    AbsVal {
                        arr: elem_ty.map(FieldTy::Prim),
                        ..AbsVal::top()
                    }
                }
                "{" => {
                    let (ni, v) = self.walk_block(t, j, env);
                    *i = ni;
                    v.unwrap_or_else(AbsVal::top)
                }
                _ => {
                    *i = j + 1;
                    AbsVal::top()
                }
            },
            TokKind::Ident => match tok.text.as_str() {
                "if" => {
                    let (ni, v) = self.walk_if(t, j, end, env);
                    *i = ni;
                    v.unwrap_or_else(AbsVal::top)
                }
                "match" => {
                    let (ni, v) = self.walk_match(t, j, end, env);
                    *i = ni;
                    v.unwrap_or_else(AbsVal::top)
                }
                "loop" => {
                    *i = self.walk_plain_loop(t, j, end, env);
                    AbsVal::top()
                }
                "while" => {
                    *i = self.walk_while(t, j, end, env);
                    AbsVal::top()
                }
                "for" => {
                    *i = self.walk_for(t, j, end, env);
                    AbsVal::top()
                }
                "unsafe" => {
                    let b = skipc(t, j + 1);
                    if t.get(b).is_some_and(|x| x.is_op("{")) {
                        let (ni, v) = self.walk_block(t, b, env);
                        *i = ni;
                        v.unwrap_or_else(AbsVal::top)
                    } else {
                        *i = b;
                        AbsVal::top()
                    }
                }
                "return" => {
                    if skipc(t, j + 1) < end {
                        let v = self.eval_expr(t, j + 1, end, env);
                        self.note_return(&v);
                    }
                    env.dead = true;
                    *i = end;
                    AbsVal::top()
                }
                "self" => {
                    *i = j + 1;
                    env.vars.get("self").cloned().unwrap_or_else(|| AbsVal {
                        is_self: true,
                        sty: self.cur_self.clone(),
                        ..AbsVal::top()
                    })
                }
                "true" | "false" => {
                    *i = j + 1;
                    AbsVal::top()
                }
                _ => self.eval_path(t, i, end, env),
            },
            _ => {
                *i = j + 1;
                AbsVal::top()
            }
        };
        // Postfix chain: `?`, `as`, field reads, method calls, indexing.
        loop {
            let k = skipc(t, *i);
            if k >= end {
                break;
            }
            let Some(tok) = t.get(k) else { break };
            if tok.is_op("?") {
                *i = k + 1;
                continue;
            }
            if tok.is_ident("as") {
                val = self.eval_cast(t, i, k, end, &val);
                continue;
            }
            if tok.is_op(".") {
                let f = skipc(t, k + 1);
                let Some(ftok) = t.get(f) else { break };
                if ftok.kind == TokKind::Int {
                    val = self.field_read(&val, &ftok.text, env);
                    *i = f + 1;
                    continue;
                }
                if ftok.kind == TokKind::Ident && ftok.text != "await" {
                    let mut after = skipc(t, f + 1);
                    if t.get(after).is_some_and(|x| x.is_op("::")) {
                        // Turbofish `.collect::<Vec<_>>()`.
                        after = skip_angles(t, skipc(t, after + 1), end);
                        after = skipc(t, after);
                    }
                    if t.get(after).is_some_and(|x| x.is_op("(")) {
                        let c = match_delim(t, after, end);
                        let spans = split_commas(t, after + 1, c);
                        let args: Vec<AbsVal> = spans
                            .iter()
                            .map(|(s, e)| self.eval_expr(t, *s, *e, env))
                            .collect();
                        let callees = self
                            .call_map
                            .get(&(self.cur_file, after))
                            .cloned()
                            .unwrap_or_default();
                        let callees = self.filter_by_recv(callees, &val);
                        self.handle_call(&callees, Some(&val), &args, ftok.line);
                        val = self.method_value(&ftok.text, &val, &args, &callees);
                        *i = c + 1;
                        continue;
                    }
                    val = self.field_read(&val, &ftok.text, env);
                    *i = f + 1;
                    continue;
                }
                if ftok.is_ident("await") {
                    *i = f + 1;
                    continue;
                }
                break;
            }
            if tok.is_op("[") {
                let c = match_delim(t, k, end);
                // Evaluate index / slice-bound expressions.
                if let Some(dots) =
                    scan_top(t, k + 1, c, |x| matches!(x.text.as_str(), ".." | "..="))
                {
                    if skipc(t, k + 1) < dots {
                        let _ = self.eval_expr(t, k + 1, dots, env);
                    }
                    if skipc(t, dots + 1) < c {
                        let _ = self.eval_expr(t, dots + 1, c, env);
                    }
                    // A slice keeps the element type.
                    val = AbsVal {
                        arr: val.arr.clone(),
                        ..AbsVal::top()
                    };
                } else {
                    let _ = self.eval_expr(t, k + 1, c, env);
                    val = match &val.arr {
                        Some(elem) => AbsVal::of_field(elem),
                        None => AbsVal::top(),
                    };
                }
                *i = c + 1;
                continue;
            }
            break;
        }
        val
    }

    /// A path expression: `name`, `a::b::c`, a call, a macro, or a
    /// struct literal.
    fn eval_path(&mut self, t: &[Token], i: &mut usize, end: usize, env: &mut Env) -> AbsVal {
        let j = skipc(t, *i);
        let Some(first) = t.get(j) else {
            *i = j + 1;
            return AbsVal::top();
        };
        let mut segs = vec![first.text.clone()];
        *i = j + 1;
        loop {
            let k = skipc(t, *i);
            if !t.get(k).is_some_and(|x| x.is_op("::")) {
                break;
            }
            let n = skipc(t, k + 1);
            match t.get(n) {
                Some(x) if x.is_op("<") => {
                    *i = skip_angles(t, n, end);
                }
                Some(x) if x.kind == TokKind::Ident => {
                    segs.push(x.text.clone());
                    *i = n + 1;
                }
                _ => break,
            }
        }
        let k = skipc(t, *i);
        match t.get(k).map(|x| x.text.as_str()) {
            Some("(") => self.eval_call(t, i, k, end, &segs, env),
            Some("!") => {
                // Macro invocation: evaluate the top-level argument
                // spans for their obligations, value unknown.
                let d = skipc(t, k + 1);
                if t.get(d)
                    .is_some_and(|x| matches!(x.text.as_str(), "(" | "[" | "{"))
                {
                    let c = match_delim(t, d, end);
                    for (s, e) in split_commas(t, d + 1, c) {
                        let _ = self.eval_expr(t, s, e, env);
                    }
                    *i = c + 1;
                } else {
                    *i = d;
                }
                AbsVal::top()
            }
            Some("{") if self.is_struct_literal(t, k, end, &segs) => {
                self.eval_struct_literal(t, i, k, end, &segs, env)
            }
            _ => self.path_value(&segs, env),
        }
    }

    /// Distinguishes `Name { field: … }` struct literals from blocks.
    fn is_struct_literal(&self, t: &[Token], brace: usize, end: usize, segs: &[String]) -> bool {
        let Some(last) = segs.last() else {
            return false;
        };
        if self.structs.contains_key(last) || last == "Self" {
            return true;
        }
        if !last.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            return false;
        }
        // Lookahead: `{ ident:` / `{ ident,` / `{ ident }` / `{ .. }`.
        let a = skipc(t, brace + 1);
        match t.get(a) {
            Some(x) if x.is_op("..") => true,
            Some(x) if x.kind == TokKind::Ident => {
                let b = skipc(t, a + 1);
                b < end
                    && t.get(b)
                        .is_some_and(|x| x.is_op(":") || x.is_op(",") || x.is_op("}"))
            }
            _ => false,
        }
    }

    /// A struct literal: evaluates every field expression and proves
    /// `assumed_fields` bounds at the write (the trust anchor for the
    /// assumption used at reads).
    fn eval_struct_literal(
        &mut self,
        t: &[Token],
        i: &mut usize,
        brace: usize,
        end: usize,
        segs: &[String],
        env: &mut Env,
    ) -> AbsVal {
        let sname = match segs.last().map(String::as_str) {
            Some("Self") => self.cur_self.clone().unwrap_or_else(|| "Self".to_string()),
            Some(s) => s.to_string(),
            None => return AbsVal::top(),
        };
        let c = match_delim(t, brace, end);
        for (s, e) in split_commas(t, brace + 1, c) {
            let fs = skipc(t, s);
            if t.get(fs).is_some_and(|x| x.is_op("..")) {
                let _ = self.eval_expr(t, fs + 1, e, env);
                continue;
            }
            let Some(ftok) = t.get(fs).filter(|x| x.kind == TokKind::Ident) else {
                continue;
            };
            let fname = ftok.text.clone();
            let line = ftok.line;
            let colon = skipc(t, fs + 1);
            let val = if t.get(colon).is_some_and(|x| x.is_op(":")) {
                self.eval_expr(t, colon + 1, e, env)
            } else {
                // Shorthand `Name { len }`.
                env.vars.get(&fname).cloned().unwrap_or_else(AbsVal::top)
            };
            if let Some(max) = self.assumed.get(&(sname.clone(), fname.clone())).copied() {
                let sink = format!("field `{sname}.{fname}` (assumed ≤ {max})");
                let _ = self.obligation(line, &val, max, &sink);
            }
        }
        *i = c + 1;
        AbsVal {
            sty: Some(sname),
            ..AbsVal::top()
        }
    }

    /// The value of a non-call path: a tracked variable, a type
    /// constant (`u8::MAX`, `u32::BITS`), or top.
    fn path_value(&self, segs: &[String], env: &Env) -> AbsVal {
        match segs {
            [name] => env.vars.get(name).cloned().unwrap_or_else(AbsVal::top),
            [ty, item] => match (Ty::parse(ty), item.as_str()) {
                (Some(ty), "MAX") => AbsVal::exact(ty.max(), Some(ty)),
                (Some(ty), "BITS") => AbsVal::exact(ty.bits() as u128, Some(Ty::U32)),
                (Some(ty), "MIN") => AbsVal::exact(0, Some(ty)),
                _ => AbsVal::top(),
            },
            _ => AbsVal::top(),
        }
    }

    /// A path call `f(args)` / `Type::method(args)`: helper bounds,
    /// identity constructors, and workspace summaries.
    fn eval_call(
        &mut self,
        t: &[Token],
        i: &mut usize,
        open: usize,
        end: usize,
        segs: &[String],
        env: &mut Env,
    ) -> AbsVal {
        let c = match_delim(t, open, end);
        let spans = split_commas(t, open + 1, c);
        let args: Vec<AbsVal> = spans
            .iter()
            .map(|(s, e)| self.eval_expr(t, *s, *e, env))
            .collect();
        *i = c + 1;
        let name = segs.last().cloned().unwrap_or_default();
        let line = t.get(open).map(|x| x.line).unwrap_or(0);
        // The checked_* cast-helper contract: the argument must fit the
        // target type (names are unique in the workspace).
        if let Some((bound, ty)) = helper_bound(&name) {
            if let Some(a0) = args.first() {
                let sink = format!("argument of `{name}` (≤ {bound})");
                let ok = self.obligation(line, a0, bound, &sink);
                let iv = if ok { a0.iv } else { Interval::new(0, bound) };
                return AbsVal {
                    iv,
                    ty: Some(ty),
                    unit: a0.unit,
                    origin: a0.origin.clone(),
                    ..AbsVal::top()
                };
            }
        }
        // `uN::from(x)`: lossless widening keeps the range.
        if segs.len() == 2 && name == "from" {
            if let (Some(ty), Some(a0)) = (segs.first().and_then(|s| Ty::parse(s)), args.first()) {
                return AbsVal {
                    iv: a0.iv.clamp_to(ty),
                    ty: Some(ty),
                    unit: a0.unit,
                    origin: a0.origin.clone(),
                    ..AbsVal::top()
                };
            }
        }
        // `Some` / `Ok` are identity in this model (matching `?`,
        // `unwrap`, and single-binding patterns); `Err` is opaque.
        if segs.len() == 1 && matches!(name.as_str(), "Some" | "Ok") {
            if let Some(a0) = args.first() {
                return a0.clone();
            }
        }
        let callees = self
            .call_map
            .get(&(self.cur_file, open))
            .cloned()
            .unwrap_or_default();
        self.handle_call(&callees, None, &args, line);
        self.call_value(&callees)
    }

    /// Join of the callees' return summaries (interval top as soon as
    /// any callee has none). Independently of the interval, when every
    /// callee declares the same struct return type (`-> &Node`), the
    /// result carries it as a receiver type so downstream field reads
    /// (`.prefix`) and method lookups (`.len()`) resolve through the
    /// struct table and pick up assumed bounds.
    fn call_value(&self, callees: &[usize]) -> AbsVal {
        let mut sty: Option<String> = None;
        let mut sfirst = true;
        for &id in callees {
            let rn = self.ret_named.get(id).cloned().flatten();
            if sfirst {
                sty = rn;
                sfirst = false;
            } else if sty != rn {
                sty = None;
            }
        }
        let mut iv: Option<Interval> = None;
        let mut ty: Option<Ty> = None;
        let mut first = true;
        for &id in callees {
            let Some(Some(s)) = self.summaries.get(id) else {
                iv = None;
                break;
            };
            iv = Some(match iv {
                Some(o) => o.join(s),
                None => *s,
            });
            let rt = self.ret_prim.get(id).copied().flatten();
            if first {
                ty = rt;
                first = false;
            } else if ty != rt {
                ty = None;
            }
        }
        match iv {
            Some(iv) => AbsVal {
                iv,
                ty,
                sty,
                ..AbsVal::top()
            },
            None => AbsVal {
                sty,
                ..AbsVal::top()
            },
        }
    }

    /// When the receiver's type is known, drops name-collision callees
    /// on *other* types (`prefix.len()` must resolve to `Prefix::len`,
    /// not every `len` in the workspace). Unknown receiver types keep
    /// the full candidate set (conservative).
    fn filter_by_recv(&self, callees: Vec<usize>, recv: &AbsVal) -> Vec<usize> {
        let rty = if recv.is_self {
            self.cur_self.clone()
        } else {
            recv.sty.clone()
        };
        let Some(rty) = rty else {
            return callees;
        };
        let matched: Vec<usize> = callees
            .iter()
            .copied()
            .filter(|&id| {
                self.table
                    .fns
                    .get(id)
                    .is_some_and(|f| f.self_ty.as_deref() == Some(rty.as_str()))
            })
            .collect();
        if matched.is_empty() {
            callees
        } else {
            matched
        }
    }

    /// Per-callee work at a call site: unit-annotation obligations and
    /// observed-argument recording for the interprocedural narrowing.
    fn handle_call(
        &mut self,
        callees: &[usize],
        recv: Option<&AbsVal>,
        args: &[AbsVal],
        line: usize,
    ) {
        for &id in callees {
            let Some(f) = self.table.fns.get(id) else {
                continue;
            };
            let fname = f.name.clone();
            let fself = f.self_ty.clone();
            let params: Vec<(String, Option<Unit>)> = self
                .params
                .get(id)
                .into_iter()
                .flatten()
                .map(|p| {
                    (
                        p.name.clone(),
                        self.ann.param_unit(fself.as_deref(), &fname, &p.name),
                    )
                })
                .collect();
            let has_self = params.first().is_some_and(|(n, _)| n == "self");
            let offset = usize::from(has_self && recv.is_some());
            for (ai, arg) in args.iter().enumerate() {
                let pidx = ai + offset;
                let Some((pname, unit)) = params.get(pidx) else {
                    continue;
                };
                if pname == "self" {
                    continue;
                }
                if let Some(u) = unit {
                    let r = u.range();
                    if r.hi < u128::MAX {
                        let sink =
                            format!("{} parameter `{pname}` of `{fname}` (≤ {})", u.name(), r.hi);
                        let _ = self.obligation(line, arg, r.hi, &sink);
                    }
                    if !matches!(arg.unit, Unit::Opaque | Unit::Count) && arg.unit != *u {
                        let msg = format!(
                            "unit mismatch: {} value passed to {} parameter `{pname}` of `{fname}` without an explicit conversion",
                            arg.unit.name(),
                            u.name()
                        );
                        let chain = arg.origin.clone().map(|o| {
                            format!(
                                "{} value from {o} → {} parameter `{pname}` of `{fname}`",
                                arg.unit.name(),
                                u.name()
                            )
                        });
                        self.push_finding(line, msg, chain);
                    }
                }
                // Record the observed argument for private-entry
                // narrowing, with a chained witness origin.
                if let Some(slot) = self.observed.get_mut(id).and_then(|r| r.get_mut(pidx)) {
                    *slot = Some(match *slot {
                        Some(o) => o.join(&arg.iv),
                        None => arg.iv,
                    });
                }
                let org = format!(
                    "{} → argument `{pname}` of {fname} at {}:{line}",
                    arg.origin
                        .clone()
                        .unwrap_or_else(|| format!("expression at {}:{line}", self.cur_rel)),
                    self.cur_rel
                );
                if let Some(slot) = self
                    .observed_origin
                    .get_mut(id)
                    .and_then(|r| r.get_mut(pidx))
                {
                    if slot.is_none() {
                        *slot = Some(org);
                    }
                }
            }
        }
    }

    /// Built-in method models (std integer/Option/Result methods) with
    /// workspace summaries as the fallback.
    fn method_value(
        &mut self,
        name: &str,
        recv: &AbsVal,
        args: &[AbsVal],
        callees: &[usize],
    ) -> AbsVal {
        let a0 = args.first();
        let keep = |iv: Interval| AbsVal {
            iv,
            ty: recv.ty,
            unit: recv.unit,
            origin: recv.origin.clone(),
            ..AbsVal::top()
        };
        match name {
            "min" => {
                if let Some(a) = a0 {
                    return keep(recv.iv.min_iv(&a.iv));
                }
            }
            "max" => {
                if let Some(a) = a0 {
                    return keep(recv.iv.max_iv(&a.iv));
                }
            }
            "saturating_sub" => {
                if let Some(a) = a0 {
                    return keep(recv.iv.saturating_sub(&a.iv));
                }
            }
            "saturating_add" => {
                if let Some(a) = a0 {
                    return keep(recv.iv.saturating_add(&a.iv, recv.ty.unwrap_or(Ty::U128)));
                }
            }
            "checked_sub" => {
                if let Some(a) = a0 {
                    // The Some payload, when present.
                    return keep(recv.iv.saturating_sub(&a.iv));
                }
            }
            "checked_add" => {
                if let Some(a) = a0 {
                    return keep(recv.iv.saturating_add(&a.iv, recv.ty.unwrap_or(Ty::U128)));
                }
            }
            "wrapping_add" | "wrapping_sub" | "wrapping_mul" | "wrapping_shl" | "wrapping_shr"
            | "checked_shl" | "checked_shr" | "checked_mul" | "checked_pow" | "pow"
            | "rotate_left" | "rotate_right" | "swap_bytes" | "reverse_bits" | "to_be"
            | "to_le" => {
                return AbsVal {
                    iv: recv.ty.map(Interval::top_of).unwrap_or(TOP),
                    ty: recv.ty,
                    ..AbsVal::top()
                };
            }
            "leading_zeros" | "trailing_zeros" | "count_ones" | "count_zeros" => {
                let bits = recv.ty.map(|t| t.bits()).unwrap_or(128) as u128;
                return AbsVal {
                    iv: Interval::new(0, bits),
                    ty: Some(Ty::U32),
                    ..AbsVal::top()
                };
            }
            "to_digit" => {
                let radix = a0.map(|a| a.iv.hi).unwrap_or(36).min(36);
                return AbsVal {
                    iv: Interval::new(0, radix.saturating_sub(1)),
                    ty: Some(Ty::U32),
                    ..AbsVal::top()
                };
            }
            "clone" | "to_owned" | "copied" | "cloned" | "as_ref" | "borrow" | "as_deref"
            | "as_deref_mut" | "as_mut" | "take" => {
                return recv.clone();
            }
            "unwrap" | "expect" | "ok" | "ok_or" | "ok_or_else" | "map_err" | "unwrap_or_else" => {
                return AbsVal {
                    is_self: false,
                    ..recv.clone()
                };
            }
            "unwrap_or" => {
                if let Some(a) = a0 {
                    return recv.join(a);
                }
            }
            "unwrap_or_default" => {
                return keep(recv.iv.join(&Interval::exact(0)));
            }
            "to_be_bytes" | "to_le_bytes" | "to_ne_bytes" | "octets" => {
                return AbsVal {
                    arr: Some(FieldTy::Prim(Ty::U8)),
                    ..AbsVal::top()
                };
            }
            "get" | "first" | "last" => {
                if let Some(elem) = &recv.arr {
                    return AbsVal::of_field(elem);
                }
                return AbsVal::top();
            }
            "isqrt" | "ilog2" | "abs_diff" => {
                return AbsVal {
                    iv: recv.ty.map(Interval::top_of).unwrap_or(TOP),
                    ty: recv.ty,
                    ..AbsVal::top()
                };
            }
            // `.len()` is deliberately NOT built in: the workspace has
            // a `Prefix::len` accessor whose summary must win.
            _ => {}
        }
        if callees.is_empty() {
            AbsVal::top()
        } else {
            self.call_value(callees)
        }
    }

    /// An `x as ty` cast: records cast proofs for L003 discharge and
    /// clamps the value. `at` is the `as` token index.
    fn eval_cast(
        &mut self,
        t: &[Token],
        i: &mut usize,
        at: usize,
        _end: usize,
        val: &AbsVal,
    ) -> AbsVal {
        let line = t.get(at).map(|x| x.line).unwrap_or(0);
        let mut j = skipc(t, at + 1);
        // Pointer casts: `as *const T` / `as *mut T`.
        while t.get(j).is_some_and(|x| {
            x.is_op("*") || x.is_ident("const") || x.is_ident("mut") || x.is_op("&")
        }) {
            j = skipc(t, j + 1);
        }
        let Some(tname) = t.get(j).filter(|x| x.kind == TokKind::Ident) else {
            *i = j;
            return AbsVal::top();
        };
        *i = j + 1;
        match Ty::parse(&tname.text) {
            Some(ty) => {
                let fits = val.iv.hi <= ty.max();
                if matches!(ty, Ty::U8 | Ty::U16 | Ty::U32 | Ty::Usize) {
                    self.record_cast(line, ty, fits);
                }
                AbsVal {
                    iv: val.iv.clamp_to(ty),
                    ty: Some(ty),
                    unit: if fits { val.unit } else { Unit::Opaque },
                    origin: val.origin.clone(),
                    ..AbsVal::top()
                }
            }
            // Non-primitive target (f64, i64, pointers): unmodelled.
            None => AbsVal::top(),
        }
    }

    /// Reads a field off an abstract value: `self.f` pseudo-variables,
    /// struct-table lookups, everything else top.
    fn field_read(&mut self, recv: &AbsVal, fname: &str, env: &Env) -> AbsVal {
        if recv.is_self {
            let key = format!("self.{fname}");
            if let Some(v) = env.vars.get(&key) {
                return v.clone();
            }
            if let Some(sname) = self.cur_self.clone() {
                if let Some(fty) = self.structs.get(&sname).and_then(|m| m.get(fname)).cloned() {
                    return self.field_val(&sname, fname, &fty);
                }
            }
            return AbsVal::top();
        }
        if let Some(sname) = recv.sty.clone() {
            if let Some(fty) = self.structs.get(&sname).and_then(|m| m.get(fname)).cloned() {
                return self.field_val(&sname, fname, &fty);
            }
        }
        AbsVal::top()
    }

    // --- obligations and recording -----------------------------------

    /// Checks `val ≤ bound` for the named sink. Returns whether the
    /// obligation is proven; emits a finding with a witness chain when
    /// it is not (collection pass only).
    fn obligation(&mut self, line: usize, val: &AbsVal, bound: u128, sink: &str) -> bool {
        let ok = val.iv.hi <= bound;
        if !self.collect {
            return ok;
        }
        self.stats.obligations += 1;
        if ok {
            self.stats.proven += 1;
            return true;
        }
        let origin = val
            .origin
            .clone()
            .unwrap_or_else(|| format!("expression at {}:{line}", self.cur_rel));
        let chain = format!("value range {} from {origin} → {sink}", val.iv);
        let msg = format!(
            "cannot prove {sink}: value may reach {} (allowed ≤ {bound})",
            if val.iv.hi == u128::MAX {
                "max".to_string()
            } else {
                val.iv.hi.to_string()
            }
        );
        self.push_finding(line, msg, Some(chain));
        false
    }

    /// A shift by a non-literal amount: the amount must stay below the
    /// shifted type's width.
    fn obligation_shift(&mut self, line: usize, key_op: &str, l: &AbsVal, r: &AbsVal) {
        match l.ty {
            Some(ty) => {
                let bound = (ty.bits() - 1) as u128;
                let sink = format!("`{key_op}` amount for {} (width {})", ty.name(), ty.bits());
                let ok = self.obligation(line, r, bound, &sink);
                self.record_arith_key(line, key_op, ok);
            }
            None => {
                if self.collect {
                    self.stats.obligations += 1;
                    let msg = format!(
                        "cannot prove `{key_op}` amount in range: the shifted type is unknown to the dataflow"
                    );
                    let origin = r
                        .origin
                        .clone()
                        .unwrap_or_else(|| format!("expression at {}:{line}", self.cur_rel));
                    let chain = format!("value range {} from {origin} → `{key_op}` amount", r.iv);
                    self.push_finding(line, msg, Some(chain));
                    self.record_arith_key(line, key_op, false);
                }
            }
        }
    }

    /// Records whether `+`/`-`/`*` (and compound forms) at a site were
    /// proven free of wrap, for L006 discharge.
    fn record_arith(&mut self, line: usize, key_op: &str, raw: Option<Interval>, ty: Option<Ty>) {
        if !self.collect {
            return;
        }
        let ok = match (raw, ty) {
            (Some(r), Some(t)) => r.hi <= t.max(),
            _ => false,
        };
        self.record_arith_key(line, key_op, ok);
    }

    fn record_arith_key(&mut self, line: usize, key_op: &str, ok: bool) {
        if !self.collect {
            return;
        }
        let key = (self.cur_rel.clone(), line, key_op.to_string());
        if ok {
            self.proven_arith.insert(key);
        } else {
            self.unproven_arith.insert(key);
        }
    }

    /// Records whether a narrowing `as` cast was proven in-range, for
    /// L003 discharge.
    fn record_cast(&mut self, line: usize, ty: Ty, ok: bool) {
        if !self.collect {
            return;
        }
        let key = (self.cur_rel.clone(), line, ty.name().to_string());
        if ok {
            self.proven_casts.insert(key);
        } else {
            self.unproven_casts.insert(key);
        }
    }

    /// A `+`/`-` mixing two distinct concrete units.
    fn unit_mix_finding(
        &mut self,
        line: usize,
        op: &str,
        a: Unit,
        b: Unit,
        l: &AbsVal,
        r: &AbsVal,
    ) {
        let msg = format!(
            "unit mismatch: `{op}` combines {} and {} without an explicit conversion",
            a.name(),
            b.name()
        );
        let origin = l
            .origin
            .clone()
            .or_else(|| r.origin.clone())
            .unwrap_or_else(|| format!("expression at {}:{line}", self.cur_rel));
        let chain = format!(
            "{} value from {origin} → `{op}` with a {} value",
            a.name(),
            b.name()
        );
        self.push_finding(line, msg, Some(chain));
    }

    /// Deduplicated R002 finding emission (collection pass only;
    /// test-region lines never report).
    fn push_finding(&mut self, line: usize, msg: String, chain: Option<String>) {
        if !self.collect {
            return;
        }
        let files = self.files;
        let Some(file) = files.get(self.cur_file) else {
            return;
        };
        if file.is_test_line(line) {
            return;
        }
        let key = (self.cur_rel.clone(), line, msg.clone());
        if !self.seen.insert(key) {
            return;
        }
        self.findings.push(semantic_finding(
            "R002",
            "bit-domain-safety",
            file,
            line,
            msg,
            chain,
        ));
    }
}

/// Skips a `<…>` generic-argument list starting at the `<` at `open`;
/// returns the index just past the closing angle.
fn skip_angles(t: &[Token], open: usize, end: usize) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    while j < end {
        match t.get(j).map(|x| x.text.as_str()) {
            Some("<") => depth += 1,
            Some("<<") => depth += 2,
            Some(">") => {
                depth -= 1;
                if depth <= 0 {
                    return j + 1;
                }
            }
            Some(">>") => {
                depth -= 2;
                if depth <= 0 {
                    return j + 1;
                }
            }
            Some("(") | Some("[") | Some("{") => {
                j = match_delim(t, j, end);
            }
            _ => {}
        }
        j += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;
    use std::path::PathBuf;

    /// Builds a workspace over in-memory files and runs the dataflow
    /// with the given `lint.toml` text.
    fn run(files: &[(&str, &str)], toml: &str) -> DataflowResult {
        let scanned: Vec<ScannedFile> = files
            .iter()
            .map(|(rel, src)| scan(PathBuf::from(rel), (*rel).to_string(), src))
            .collect();
        let symbols = SymbolTable::build(&scanned);
        let calls = crate::callgraph::CallGraph::build(&symbols, &scanned);
        let ws = Workspace {
            files: &scanned,
            symbols: &symbols,
            calls: &calls,
        };
        let cfg = Config::parse(toml).expect("test config parses");
        analyze(&ws, &cfg)
    }

    fn messages(r: &DataflowResult) -> Vec<String> {
        r.findings.iter().map(|d| d.message.clone()).collect()
    }

    #[test]
    fn literal_shift_and_mask_are_proven() {
        let r = run(
            &[(
                "crates/x/src/lib.rs",
                "pub fn f(v: u128) -> u8 {\n    ((v >> 8) & 0xff) as u8\n}\n",
            )],
            "",
        );
        assert_eq!(messages(&r), Vec::<String>::new());
        assert!(r
            .proven_casts
            .contains(&("crates/x/src/lib.rs".to_string(), 2, "u8".to_string())));
    }

    #[test]
    fn unbounded_shift_amount_is_flagged_with_witness() {
        let r = run(
            &[(
                "crates/x/src/lib.rs",
                "pub fn f(v: u64, n: u32) -> u64 {\n    v << n\n}\n",
            )],
            "",
        );
        let msgs = messages(&r);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(
            msgs.first()
                .is_some_and(|m| m.contains("`<<` amount for u64 (width 64)")),
            "{msgs:?}"
        );
        let chain = r
            .findings
            .first()
            .and_then(|d| d.chain.clone())
            .unwrap_or_default();
        assert!(
            chain.contains("parameter `n` of `f`") && chain.contains("`<<` amount"),
            "chain: {chain}"
        );
    }

    #[test]
    fn guard_refinement_proves_shift() {
        let src = "pub fn f(v: u64, n: u32) -> u64 {\n    if n >= 64 {\n        0\n    } else {\n        v << n\n    }\n}\n";
        let r = run(&[("crates/x/src/lib.rs", src)], "");
        assert_eq!(messages(&r), Vec::<String>::new());
    }

    #[test]
    fn early_return_refutation_proves_shift() {
        let src = "pub fn f(v: u128, n: u32) -> u128 {\n    if n > 127 {\n        return 0;\n    }\n    v << n\n}\n";
        let r = run(&[("crates/x/src/lib.rs", src)], "");
        assert_eq!(messages(&r), Vec::<String>::new());
    }

    #[test]
    fn join_at_if_merge_is_the_hull() {
        // Merging 3 and 200 gives [3,200]: too big for the u8 shift…
        let bad = "pub fn f(v: u8, c: bool) -> u8 {\n    let n = if c { 3u32 } else { 200 };\n    v >> n\n}\n";
        let r = run(&[("crates/x/src/lib.rs", bad)], "");
        assert_eq!(messages(&r).len(), 1);
        // …while merging 3 and 6 stays within the width.
        let ok = "pub fn f(v: u8, c: bool) -> u8 {\n    let n = if c { 3u32 } else { 6 };\n    v >> n\n}\n";
        let r = run(&[("crates/x/src/lib.rs", ok)], "");
        assert_eq!(messages(&r), Vec::<String>::new());
    }

    #[test]
    fn match_arms_join_and_literal_patterns_refine() {
        let src = "pub fn f(v: u64, k: u32) -> u64 {\n    let s = match k {\n        1 => 1u32,\n        4 => 4,\n        8 => 8,\n        _ => 16,\n    };\n    v << s\n}\n";
        let r = run(&[("crates/x/src/lib.rs", src)], "");
        assert_eq!(messages(&r), Vec::<String>::new());
    }

    #[test]
    fn widening_terminates_and_loop_range_reaches_sink() {
        // `i` grows without a provable bound: widening must terminate
        // (no hang) and the shift must be flagged, naming the loop.
        let src = "pub fn f(v: u64) -> u64 {\n    let mut acc = v;\n    let mut i = 0u32;\n    loop {\n        if i > 1000000 {\n            break;\n        }\n        acc = acc << i;\n        i += 1;\n    }\n    acc\n}\n";
        let r = run(&[("crates/x/src/lib.rs", src)], "");
        let msgs = messages(&r);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        let chain = r
            .findings
            .first()
            .and_then(|d| d.chain.clone())
            .unwrap_or_default();
        assert!(chain.contains("loop at"), "chain: {chain}");
    }

    #[test]
    fn bounded_for_loop_is_proven() {
        let src = "pub fn f(v: u128) -> u128 {\n    let mut acc = 0u128;\n    for i in 0..32u32 {\n        acc |= v >> (i * 4);\n    }\n    acc\n}\n";
        let r = run(&[("crates/x/src/lib.rs", src)], "");
        assert_eq!(messages(&r), Vec::<String>::new());
    }

    #[test]
    fn checked_helper_call_sites_carry_an_obligation() {
        let files = [
            (
                "crates/addr/src/cast.rs",
                "pub const fn checked_u8(v: u128) -> u8 {\n    (v & 0xff) as u8\n}\n",
            ),
            (
                "crates/x/src/lib.rs",
                "use addr::cast::checked_u8;\npub fn ok(v: u128) -> u8 {\n    checked_u8(v & 0xff)\n}\npub fn bad(v: u128) -> u8 {\n    checked_u8(v + 1)\n}\n",
            ),
        ];
        let r = run(&files, "");
        let msgs = messages(&r);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(
            msgs.first()
                .is_some_and(|m| m.contains("argument of `checked_u8`")),
            "{msgs:?}"
        );
    }

    #[test]
    fn annotated_param_range_is_assumed_inside_and_checked_at_calls() {
        let toml = "[rules.R002]\nbits_params = [\"mask::len\"]\n";
        let files = [(
            "crates/x/src/lib.rs",
            "pub fn mask(len: u32) -> u128 {\n    if len == 0 {\n        0\n    } else {\n        1u128 << (len - 1)\n    }\n}\npub fn caller(n: u32) -> u128 {\n    mask(n)\n}\n",
        )];
        let r = run(&files, toml);
        let msgs = messages(&r);
        // Inside `mask` the annotation bounds len ≤ 128 so the shift is
        // proven; at the call site the unbounded `n` is flagged.
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(
            msgs.first()
                .is_some_and(|m| m.contains("bits parameter `len` of `mask`")),
            "{msgs:?}"
        );
    }

    #[test]
    fn unit_tags_propagate_and_mixing_is_flagged() {
        let toml = "[rules.R002]\nbits_params = [\"shl::n\"]\nnybble_params = [\"nyb::i\"]\n";
        let files = [(
            "crates/x/src/lib.rs",
            "pub fn shl(v: u128, n: u32) -> u128 {\n    if n >= 128 { 0 } else { v << n }\n}\npub fn nyb(v: u128, i: u32) -> u32 {\n    (shl(v, i) & 0xf) as u32\n}\n",
        )];
        let r = run(&files, toml);
        let msgs = messages(&r);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(
            msgs.first().is_some_and(|m| m.contains("unit mismatch")
                && m.contains("nybbles")
                && m.contains("bits")),
            "{msgs:?}"
        );
    }

    #[test]
    fn unit_tag_survives_linear_arithmetic() {
        // nybble + count stays nybbles, so passing it onward is clean;
        // the range check still applies (i ≤ 32 via annotation, +1 → 33
        // exceeds the nybble range and is flagged).
        let toml = "[rules.R002]\nnybble_params = [\"nyb::i\", \"next::i\"]\n";
        let files = [(
            "crates/x/src/lib.rs",
            "pub fn nyb(v: u128, i: u32) -> u32 {\n    let _ = v;\n    i\n}\npub fn next(v: u128, i: u32) -> u32 {\n    nyb(v, i);\n    nyb(v, i + 1)\n}\n",
        )];
        let r = run(&files, toml);
        let msgs = messages(&r);
        // Two findings would mean the tag degraded to a mix error; the
        // only expected finding is the range overflow at `i + 1`.
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(
            msgs.first()
                .is_some_and(|m| m.contains("nybbles parameter `i` of `nyb`")),
            "{msgs:?}"
        );
    }

    #[test]
    fn interprocedural_summary_bounds_return_values() {
        let files = [(
            "crates/x/src/lib.rs",
            "fn small() -> u32 {\n    7\n}\npub fn f(v: u64) -> u64 {\n    v << small()\n}\n",
        )];
        let r = run(&files, "");
        assert_eq!(messages(&r), Vec::<String>::new());
    }

    #[test]
    fn private_fn_entries_narrow_to_observed_args() {
        let files = [(
            "crates/x/src/lib.rs",
            "fn shifty(v: u64, n: u32) -> u64 {\n    v << n\n}\npub fn f(v: u64) -> u64 {\n    shifty(v, 9)\n}\n",
        )];
        let r = run(&files, "");
        assert_eq!(messages(&r), Vec::<String>::new());
    }

    #[test]
    fn pub_fn_entries_stay_at_declared_type_top() {
        let files = [(
            "crates/x/src/lib.rs",
            "pub fn shifty(v: u64, n: u32) -> u64 {\n    v << n\n}\npub fn f(v: u64) -> u64 {\n    shifty(v, 9)\n}\n",
        )];
        let r = run(&files, "");
        // `shifty` is pub: external callers may pass anything, so the
        // narrowing must NOT apply and the shift stays unproven.
        assert_eq!(messages(&r).len(), 1);
    }

    #[test]
    fn assumed_fields_bound_reads_and_are_checked_at_writes() {
        let toml = "[rules.R002]\nassumed_fields = [\"Prefix.len <= 128\"]\n";
        let files = [(
            "crates/x/src/lib.rs",
            "pub struct Prefix {\n    len: u8,\n}\nimpl Prefix {\n    pub fn new(len: u8) -> Prefix {\n        assert!(len <= 128);\n        Prefix { len }\n    }\n    pub fn bit(&self) -> u128 {\n        if self.len == 0 {\n            0\n        } else {\n            1u128 << (128 - self.len as u32)\n        }\n    }\n}\n",
        )];
        let r = run(&files, toml);
        assert_eq!(messages(&r), Vec::<String>::new());
    }

    #[test]
    fn struct_literal_write_violating_assumption_is_flagged() {
        let toml = "[rules.R002]\nassumed_fields = [\"Prefix.len <= 128\"]\n";
        let files = [(
            "crates/x/src/lib.rs",
            "pub struct Prefix {\n    len: u8,\n}\npub fn make(len: u8) -> Prefix {\n    Prefix { len }\n}\n",
        )];
        let r = run(&files, toml);
        let msgs = messages(&r);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(
            msgs.first()
                .is_some_and(|m| m.contains("field `Prefix.len` (assumed ≤ 128)")),
            "{msgs:?}"
        );
    }

    #[test]
    fn while_loop_condition_bounds_the_body() {
        let src = "pub fn f(v: u64) -> u64 {\n    let mut n = 0u32;\n    let mut acc = v;\n    while n < 64 {\n        acc ^= v << n;\n        n += 1;\n    }\n    acc\n}\n";
        let r = run(&[("crates/x/src/lib.rs", src)], "");
        assert_eq!(messages(&r), Vec::<String>::new());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn f(v: u64, n: u32) -> u64 {\n        v << n\n    }\n}\n";
        let r = run(&[("crates/x/src/lib.rs", src)], "");
        assert_eq!(messages(&r), Vec::<String>::new());
    }

    #[test]
    fn stats_count_passes_and_summaries() {
        let files = [(
            "crates/x/src/lib.rs",
            "fn a() -> u32 {\n    1\n}\npub fn b() -> u32 {\n    a() + 1\n}\n",
        )];
        let r = run(&files, "");
        assert_eq!(r.stats.passes, 3);
        assert_eq!(r.stats.fns_analyzed, 2);
        assert!(r.stats.summaries >= 2, "{:?}", r.stats);
    }
}
