//! Diagnostics and their human / machine renderings.

use std::fmt::Write as _;

/// How a rule's findings affect the process exit code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Reported and fatal: any denied finding makes the run exit 1.
    Deny,
    /// Reported only.
    Warn,
}

/// One finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Stable rule id (`L001` … `L007`, `R001`, `P000`, `P001`).
    pub rule: String,
    /// Human rule name (`no-panic-paths`).
    pub name: &'static str,
    /// Workspace-relative path.
    pub rel: String,
    /// 1-based line.
    pub line: usize,
    /// What is wrong.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// For interprocedural findings (`R001`), the call chain from the
    /// entry point to the flagged site, `a → b → c` style.
    pub chain: Option<String>,
    /// Deny or warn, assigned by the engine's severity map.
    pub severity: Severity,
    /// True when an allow pragma suppressed this finding.
    pub suppressed: bool,
    /// Set when another rule's analysis proved this site safe and
    /// auto-discharged the finding (e.g. `"R002"` on an L003/L006 site
    /// the dataflow proved in-range). Discharged findings never deny
    /// and are hidden from human output, but stay visible in JSON.
    pub discharged_by: Option<String>,
}

/// The result of a lint run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Every finding, suppressed ones included (JSON consumers see the
    /// full picture; human output hides suppressions behind a count).
    pub diagnostics: Vec<Diagnostic>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings that were denied and not suppressed — what fails the run.
    pub fn denied(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny && !d.suppressed && d.discharged_by.is_none())
    }

    /// Unsuppressed warn-level findings.
    pub fn warned(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn && !d.suppressed && d.discharged_by.is_none())
    }

    /// Suppressed findings (an allow pragma matched).
    pub fn suppressed_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.suppressed).count()
    }

    /// Findings auto-discharged by another rule's proof.
    pub fn discharged_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.discharged_by.is_some())
            .count()
    }

    /// The process exit code this report dictates.
    pub fn exit_code(&self) -> i32 {
        i32::from(self.denied().next().is_some())
    }

    /// `path:line: severity[rule/name] message` diagnostics plus a
    /// one-line summary, sorted by path and line for stable output.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        let mut shown: Vec<&Diagnostic> = self
            .diagnostics
            .iter()
            .filter(|d| !d.suppressed && d.discharged_by.is_none())
            .collect();
        shown.sort_by(|a, b| (&a.rel, a.line, &a.rule).cmp(&(&b.rel, b.line, &b.rule)));
        for d in &shown {
            let sev = match d.severity {
                Severity::Deny => "deny",
                Severity::Warn => "warn",
            };
            let _ = writeln!(
                out,
                "{}:{}: {sev}[{}/{}] {}",
                d.rel, d.line, d.rule, d.name, d.message
            );
            if !d.snippet.is_empty() {
                let _ = writeln!(out, "    | {}", d.snippet);
            }
            if let Some(chain) = &d.chain {
                let _ = writeln!(out, "    = via: {chain}");
            }
        }
        let _ = writeln!(
            out,
            "v6census-lint: {} denied, {} warned, {} suppressed by pragma{}; {} files scanned",
            self.denied().count(),
            self.warned().count(),
            self.suppressed_count(),
            self.discharged_segment(),
            self.files_scanned
        );
        out
    }

    /// `, N discharged by dataflow` when any finding was discharged,
    /// empty otherwise (keeps the summary line stable for runs where
    /// the dataflow has nothing to say).
    fn discharged_segment(&self) -> String {
        match self.discharged_count() {
            0 => String::new(),
            n => format!(", {n} discharged by dataflow"),
        }
    }

    /// GitHub Actions workflow-command annotations: one
    /// `::error`/`::warning` line per unsuppressed finding, so findings
    /// surface inline on the PR diff, followed by the human summary
    /// line (a plain line, which Actions passes through).
    pub fn render_github(&self) -> String {
        let mut out = String::new();
        let mut shown: Vec<&Diagnostic> = self
            .diagnostics
            .iter()
            .filter(|d| !d.suppressed && d.discharged_by.is_none())
            .collect();
        shown.sort_by(|a, b| (&a.rel, a.line, &a.rule).cmp(&(&b.rel, b.line, &b.rule)));
        for d in &shown {
            let level = match d.severity {
                Severity::Deny => "error",
                Severity::Warn => "warning",
            };
            let mut message = d.message.clone();
            if let Some(chain) = &d.chain {
                message.push_str(" (via ");
                message.push_str(chain);
                message.push(')');
            }
            let _ = writeln!(
                out,
                "::{level} file={},line={},title={}::{}",
                github_escape_prop(&d.rel),
                d.line,
                github_escape_prop(&format!("{} {}", d.rule, d.name)),
                github_escape(&message)
            );
        }
        let _ = writeln!(
            out,
            "v6census-lint: {} denied, {} warned, {} suppressed by pragma{}; {} files scanned",
            self.denied().count(),
            self.warned().count(),
            self.suppressed_count(),
            self.discharged_segment(),
            self.files_scanned
        );
        out
    }

    /// Machine-readable JSON: the full diagnostic list plus a summary.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"diagnostics\": [");
        let mut sorted: Vec<&Diagnostic> = self.diagnostics.iter().collect();
        sorted.sort_by(|a, b| (&a.rel, a.line, &a.rule).cmp(&(&b.rel, b.line, &b.rule)));
        for (i, d) in sorted.iter().enumerate() {
            let sev = match d.severity {
                Severity::Deny => "deny",
                Severity::Warn => "warn",
            };
            let chain = match &d.chain {
                Some(c) => json_str(c),
                None => "null".to_string(),
            };
            let discharged = match &d.discharged_by {
                Some(r) => json_str(r),
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "{}\n    {{\"rule\": {}, \"name\": {}, \"path\": {}, \"line\": {}, \"severity\": {}, \"suppressed\": {}, \"discharged_by\": {}, \"message\": {}, \"snippet\": {}, \"chain\": {}}}",
                if i == 0 { "" } else { "," },
                json_str(&d.rule),
                json_str(d.name),
                json_str(&d.rel),
                d.line,
                json_str(sev),
                d.suppressed,
                discharged,
                json_str(&d.message),
                json_str(&d.snippet),
                chain,
            );
        }
        let _ = write!(
            out,
            "\n  ],\n  \"summary\": {{\"denied\": {}, \"warned\": {}, \"suppressed\": {}, \"discharged\": {}, \"files_scanned\": {}}}\n}}\n",
            self.denied().count(),
            self.warned().count(),
            self.suppressed_count(),
            self.discharged_count(),
            self.files_scanned
        );
        out
    }
}

/// Escapes a workflow-command message: `%`, newlines, and carriage
/// returns must be percent-encoded or GitHub truncates the annotation.
fn github_escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Escapes a workflow-command *property* value (`file=`, `title=`):
/// on top of the message escapes, `,` and `:` must be percent-encoded
/// or they terminate the property / command early.
fn github_escape_prop(s: &str) -> String {
    github_escape(s).replace(':', "%3A").replace(',', "%2C")
}

/// JSON string escaping (control characters, quotes, backslashes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &str, sev: Severity, suppressed: bool) -> Diagnostic {
        Diagnostic {
            rule: rule.into(),
            name: "test-rule",
            rel: "crates/x/src/lib.rs".into(),
            line: 3,
            message: "a \"quoted\" problem".into(),
            snippet: "let x = 1;".into(),
            chain: None,
            severity: sev,
            suppressed,
            discharged_by: None,
        }
    }

    #[test]
    fn exit_code_follows_denied_findings() {
        let mut r = Report::default();
        assert_eq!(r.exit_code(), 0);
        r.diagnostics.push(diag("L001", Severity::Warn, false));
        assert_eq!(r.exit_code(), 0, "warnings never fail the run");
        r.diagnostics.push(diag("L002", Severity::Deny, true));
        assert_eq!(r.exit_code(), 0, "suppressed findings never fail the run");
        r.diagnostics.push(diag("L003", Severity::Deny, false));
        assert_eq!(r.exit_code(), 1);
    }

    #[test]
    fn renders_human_and_json() {
        let mut r = Report {
            files_scanned: 2,
            ..Report::default()
        };
        r.diagnostics.push(diag("L001", Severity::Deny, false));
        let human = r.render_human();
        assert!(human.contains("deny[L001/test-rule]"));
        assert!(human.contains("1 denied"));
        let json = r.render_json();
        assert!(json.contains("\"rule\": \"L001\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"files_scanned\": 2"));
        assert!(json.contains("\"chain\": null"));
    }

    #[test]
    fn renders_github_annotations() {
        let mut r = Report {
            files_scanned: 1,
            ..Report::default()
        };
        let mut d = diag("R001", Severity::Deny, false);
        d.chain = Some("cli::main → trie::node_at".into());
        r.diagnostics.push(d);
        r.diagnostics.push(diag("L002", Severity::Warn, false));
        r.diagnostics.push(diag("L003", Severity::Deny, true));
        let gh = r.render_github();
        assert!(
            gh.contains("::error file=crates/x/src/lib.rs,line=3,title=R001 test-rule::"),
            "{gh}"
        );
        assert!(gh.contains("(via cli::main → trie::node_at)"), "{gh}");
        assert!(gh.contains("::warning file="), "{gh}");
        assert!(!gh.contains("L003"), "suppressed findings are hidden: {gh}");
    }

    #[test]
    fn chain_round_trips_through_renderings() {
        let mut r = Report::default();
        let mut d = diag("R001", Severity::Deny, false);
        d.chain = Some("a → b".into());
        r.diagnostics.push(d);
        assert!(r.render_human().contains("= via: a → b"));
        assert!(r.render_json().contains("\"chain\": \"a → b\""));
    }

    #[test]
    fn github_escape_encodes_control_sequences() {
        assert_eq!(github_escape("a%b\nc"), "a%25b%0Ac");
    }

    #[test]
    fn github_property_values_escape_commas_and_colons() {
        assert_eq!(github_escape_prop("a:b,c%d"), "a%3Ab%2Cc%25d");
        let mut r = Report::default();
        let mut d = diag("L001", Severity::Deny, false);
        d.rel = "crates/x/src/odd,name:file.rs".into();
        r.diagnostics.push(d);
        let gh = r.render_github();
        assert!(
            gh.contains("file=crates/x/src/odd%2Cname%3Afile.rs,line="),
            "a `,`/`:` in a property value must not split the annotation: {gh}"
        );
    }
}
