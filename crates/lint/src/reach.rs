//! R001 panic-reachability: an interprocedural proof that no non-test
//! call path from the configured entry points reaches a panicking
//! construct.
//!
//! The workspace's exit-code contract says a run ends with a documented
//! `EXIT_*` status — which is only true if nothing on the way can
//! `panic!` its way past `main`. L001 already forbids panicking
//! constructs file-by-file inside its scoped paths, but a lexical rule
//! cannot see that `cli::main → census::run_census → …` crosses into a
//! crate outside those paths. This pass can: it walks the
//! [`crate::callgraph`] breadth-first from each entry point in
//! `lint.toml`'s `[reach] entry_points` (default `cli::main`) and flags
//! every reachable panic site, printing the full call chain
//! (`cli::main → census::supervisor::run_census → …`).
//!
//! A site is exempt when the line carries a valid reasoned pragma for
//! the lexical rule that owns the construct (`L001` for panics and
//! literal indexing, `L006` for overflow-capable arithmetic) — those
//! risks are already argued in place — or when the finding itself is
//! suppressed with `allow(R001, reason = …)`.
//!
//! Because the call graph over-approximates (see `callgraph`), a clean
//! run is a proof; a finding is a lead that names its witness chain.

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, VecDeque};

use crate::config::Config;
use crate::report::Diagnostic;
use crate::rules::{
    arith_sites, code_lines, literal_index_positions, semantic_finding, token_positions,
    SemanticRule, Workspace, PANIC_TOKENS,
};

/// Entry points assumed when `lint.toml` has no `[reach]` section.
const DEFAULT_ENTRY_POINTS: &[&str] = &["cli::main"];

/// The R001 panic-reachability rule.
pub struct PanicReach;

impl SemanticRule for PanicReach {
    fn id(&self) -> &'static str {
        "R001"
    }
    fn name(&self) -> &'static str {
        "panic-reachability"
    }
    fn describe(&self) -> &'static str {
        "no non-test call path from the [reach] entry points may hit a panicking construct without a reasoned pragma"
    }
    fn check(&self, ws: &Workspace<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
        let configured = cfg.list("reach", "entry_points");
        let entries: Vec<String> = if configured.is_empty() {
            DEFAULT_ENTRY_POINTS.iter().map(|s| s.to_string()).collect()
        } else {
            configured.to_vec()
        };

        // Breadth-first reachability with parent pointers. The parent
        // map doubles as the visited set; roots map to `None`.
        let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut entry_label: BTreeMap<usize, String> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for entry in &entries {
            for id in ws.symbols.find_by_suffix(entry) {
                if ws.symbols.fns.get(id).is_some_and(|f| f.is_test) {
                    continue;
                }
                if let Entry::Vacant(slot) = parent.entry(id) {
                    slot.insert(None);
                    entry_label.insert(id, entry.clone());
                    queue.push_back(id);
                }
            }
        }
        while let Some(cur) = queue.pop_front() {
            let inherited = entry_label.get(&cur).cloned().unwrap_or_default();
            for (callee, _line, _expr) in ws.calls.edges(cur) {
                if parent.contains_key(&callee)
                    || ws.symbols.fns.get(callee).is_some_and(|f| f.is_test)
                {
                    continue;
                }
                parent.insert(callee, Some(cur));
                entry_label.insert(callee, inherited.clone());
                queue.push_back(callee);
            }
        }

        for (fidx, file) in ws.files.iter().enumerate() {
            for (line_no, what, owner) in panic_sites(file, cfg) {
                // A reasoned pragma for the owning lexical rule means
                // this site's risk is already argued in place.
                let argued = file.pragmas.iter().any(|p| {
                    p.error.is_none()
                        && p.rule == owner
                        && (p.target_line.is_none() || p.target_line == Some(line_no))
                });
                if argued {
                    continue;
                }
                let Some(fn_id) = enclosing_fn(ws, fidx, line_no) else {
                    continue;
                };
                if !parent.contains_key(&fn_id) {
                    continue;
                }
                let chain = build_chain(ws, &parent, fn_id);
                let entry = entry_label.get(&fn_id).cloned().unwrap_or_default();
                out.push(semantic_finding(
                    self.id(),
                    self.name(),
                    file,
                    line_no,
                    format!(
                        "{what} is reachable from entry `{entry}` — make the path total or pragma the site with a reason"
                    ),
                    Some(chain),
                ));
            }
        }
    }
}

/// Panic sites of one file as `(line, what, owning lexical rule)`.
/// L001-family constructs count everywhere; overflow-capable arithmetic
/// counts only where `lint.toml` puts L006 in scope (arithmetic is
/// ordinary outside bit-math modules).
fn panic_sites(
    file: &crate::scan::ScannedFile,
    cfg: &Config,
) -> Vec<(usize, String, &'static str)> {
    let mut sites = Vec::new();
    for (line_no, code) in code_lines(file) {
        for &(tok, _why) in PANIC_TOKENS {
            if !token_positions(code, tok).is_empty() {
                sites.push((line_no, format!("`{}`", tok.trim_end_matches('(')), "L001"));
            }
        }
        if !literal_index_positions(code).is_empty() {
            sites.push((line_no, "literal indexing".to_string(), "L001"));
        }
    }
    if cfg.rule_applies("L006", &file.rel) && cfg.has_section("rules.L006") {
        for (line_no, what) in arith_sites(file) {
            sites.push((line_no, what, "L006"));
        }
    }
    sites
}

/// The innermost function of `file` whose body spans `line`.
fn enclosing_fn(ws: &Workspace<'_>, fidx: usize, line: usize) -> Option<usize> {
    let file = ws.files.get(fidx)?;
    let mut best: Option<(usize, usize)> = None; // (body start line, fn id)
    for (id, f) in ws.symbols.fns.iter().enumerate() {
        if f.file != fidx {
            continue;
        }
        let Some((s, e)) = f.body else { continue };
        let Some(start) = file.tokens.get(s).map(|t| t.line) else {
            continue;
        };
        let Some(end) = file.tokens.get(e.saturating_sub(1)).map(|t| t.end_line) else {
            continue;
        };
        if (start..=end).contains(&line) && best.is_none_or(|(bs, _)| start >= bs) {
            best = Some((start, id));
        }
    }
    best.map(|(_, id)| id)
}

/// Renders the `entry → … → site_fn` chain by walking parent pointers.
fn build_chain(
    ws: &Workspace<'_>,
    parent: &BTreeMap<usize, Option<usize>>,
    mut fn_id: usize,
) -> String {
    let mut names: Vec<String> = Vec::new();
    // The parent map is acyclic by construction (BFS tree), but cap the
    // walk anyway so a future bug cannot loop forever.
    for _ in 0..ws.symbols.fns.len() + 1 {
        let name = ws
            .symbols
            .fns
            .get(fn_id)
            .map(|f| f.qname.clone())
            .unwrap_or_default();
        names.push(name);
        match parent.get(&fn_id) {
            Some(Some(up)) => fn_id = *up,
            _ => break,
        }
    }
    names.reverse();
    names.join(" → ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::scan::{scan, ScannedFile};
    use crate::symbols::SymbolTable;
    use std::path::PathBuf;

    fn check_reach(cfg: &Config, files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let scanned: Vec<ScannedFile> = files
            .iter()
            .map(|(rel, src)| scan(PathBuf::from(rel), (*rel).into(), src))
            .collect();
        let symbols = SymbolTable::build(&scanned);
        let calls = CallGraph::build(&symbols, &scanned);
        let ws = Workspace {
            files: &scanned,
            symbols: &symbols,
            calls: &calls,
        };
        let mut out = Vec::new();
        PanicReach.check(&ws, cfg, &mut out);
        out
    }

    fn entry_cfg(entries: &str) -> Config {
        Config::parse(&format!("[reach]\nentry_points = [{entries}]\n")).expect("config parses")
    }

    #[test]
    fn reachable_panic_is_found_with_its_chain() {
        let cli = "\
use v6census_census::supervisor::run_census;
fn main() { run_census(); }
";
        let census = "\
use v6census_trie::node::node_at;
pub fn run_census() { densify(); }
fn densify() { node_at(); }
";
        let trie = "\
pub fn node_at() {
    let v: Vec<u8> = Vec::new();
    v.get(9).unwrap();
}
";
        let diags = check_reach(
            &entry_cfg("\"cli::main\""),
            &[
                ("crates/cli/src/main.rs", cli),
                ("crates/census/src/supervisor.rs", census),
                ("crates/trie/src/node.rs", trie),
            ],
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        let d = diags.first().expect("one finding");
        assert_eq!(d.rel, "crates/trie/src/node.rs");
        assert_eq!(d.line, 3);
        assert!(d.message.contains(".unwrap"), "{}", d.message);
        assert_eq!(
            d.chain.as_deref(),
            Some(
                "cli::main → census::supervisor::run_census → census::supervisor::densify → trie::node::node_at"
            ),
            "{:?}",
            d.chain
        );
    }

    #[test]
    fn chains_cross_impl_trait_signatures() {
        // Regression: an `impl Trait` param used to make the symbol
        // table drop `helper`'s body, so this chain went unseen and the
        // "clean run is a proof" contract was silently false.
        let src = "\
fn main() { helper(1, |x| x); }
fn helper(n: u64, f: impl Fn(u64) -> u64) -> u64 { boom(f(n)) }
fn boom(n: u64) -> u64 { n.checked_add(1).unwrap() }
";
        let diags = check_reach(
            &entry_cfg("\"cli::main\""),
            &[("crates/cli/src/main.rs", src)],
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        let d = diags.first().expect("one finding");
        assert_eq!(d.line, 3);
        assert_eq!(
            d.chain.as_deref(),
            Some("cli::main → cli::helper → cli::boom"),
            "{:?}",
            d.chain
        );
    }

    #[test]
    fn unreachable_and_test_panics_are_ignored() {
        let src = "\
fn main() { safe(); }
fn safe() {}
fn dead_code() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}
";
        let diags = check_reach(
            &entry_cfg("\"cli::main\""),
            &[("crates/cli/src/main.rs", src)],
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn pragmad_sites_are_exempt_but_bare_ones_are_not() {
        let src = "\
fn main() {
    argued();
    bare();
}
fn argued() {
    x.unwrap(); // lint: allow(L001, reason = \"invariant: seeded above\")
}
fn bare() {
    y.unwrap();
}
";
        let diags = check_reach(
            &entry_cfg("\"cli::main\""),
            &[("crates/cli/src/main.rs", src)],
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags.first().map(|d| d.line), Some(9));
    }

    #[test]
    fn multiple_entry_points_are_walked() {
        let src = "\
pub fn census() { boom(); }
pub fn synth() {}
fn boom() { panic!(\"no\"); }
";
        let none = check_reach(
            &entry_cfg("\"commands::synth\""),
            &[("crates/cli/src/commands/mod.rs", src)],
        );
        assert!(none.is_empty(), "{none:?}");
        let hit = check_reach(
            &entry_cfg("\"commands::synth\", \"commands::census\""),
            &[("crates/cli/src/commands/mod.rs", src)],
        );
        assert_eq!(hit.len(), 1, "{hit:?}");
        assert!(
            hit.first()
                .and_then(|d| d.chain.as_deref())
                .is_some_and(|c| c.contains("cli::commands::census")),
            "{hit:?}"
        );
    }
}
