//! The unsigned interval lattice underlying rule R002.
//!
//! Every quantity the dataflow layer tracks — prefix lengths, nybble
//! indices, shift amounts, segment values — is an unsigned machine
//! integer, so the abstract domain is intervals over `u128` (the widest
//! type the workspace manipulates; `u128::MAX` itself must be
//! representable, which rules out a signed carrier). The lattice is the
//! usual one:
//!
//! * bottom is represented *outside* the domain (an infeasible
//!   environment is dead, see [`crate::dataflow`]); every [`Interval`]
//!   value is a non-empty range `lo ..= hi`;
//! * join is the range hull;
//! * widening jumps `lo` down / `hi` up to the nearest of a fixed
//!   threshold set chosen from the constants that actually appear in
//!   bit-domain code (type widths, `128`, `0xff`, …), so loop fixpoints
//!   terminate in a handful of iterations *and* land on the bounds the
//!   obligations compare against.
//!
//! Transfer functions mirror the wrapping semantics questions R002 asks:
//! operators that can leave the mathematical range (`+`, `-`, `*`, `<<`)
//! return `None` on possible wrap and the caller degrades to
//! top-of-type; operators that are total on unsigned values (`&`, `|`,
//! `^`, `>>`, `min`, `max`, saturating forms) stay precise. The bitand
//! rule `[0, min(hi_l, hi_r)]` is the workhorse: it proves every
//! `x & 0xf`-style masked extraction without knowing anything about `x`.

/// A primitive unsigned integer type, as the dataflow layer sees it.
///
/// `usize` is modelled as 64-bit — the workspace targets 64-bit hosts
/// (documented in `lint.toml`), and modelling it *narrower* than the
/// real width would be unsound for proofs about values stored into it,
/// while modelling it wider only loses precision.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Ty {
    /// `u8`
    U8,
    /// `u16`
    U16,
    /// `u32`
    U32,
    /// `u64`
    U64,
    /// `u128`
    U128,
    /// `usize`, modelled as 64 bits (64-bit host assumption).
    Usize,
}

impl Ty {
    /// Parses a type spelling; signed and non-primitive spellings are
    /// not modelled and return `None`.
    pub fn parse(name: &str) -> Option<Ty> {
        match name {
            "u8" => Some(Ty::U8),
            "u16" => Some(Ty::U16),
            "u32" => Some(Ty::U32),
            "u64" => Some(Ty::U64),
            "u128" => Some(Ty::U128),
            "usize" => Some(Ty::Usize),
            _ => None,
        }
    }

    /// The type's bit width (the bound every shift obligation compares
    /// against).
    pub fn bits(self) -> u32 {
        match self {
            Ty::U8 => 8,
            Ty::U16 => 16,
            Ty::U32 => 32,
            Ty::U64 | Ty::Usize => 64,
            Ty::U128 => 128,
        }
    }

    /// The type's maximum value.
    pub fn max(self) -> u128 {
        all_ones(self.bits())
    }

    /// The type's name as written in source.
    pub fn name(self) -> &'static str {
        match self {
            Ty::U8 => "u8",
            Ty::U16 => "u16",
            Ty::U32 => "u32",
            Ty::U64 => "u64",
            Ty::U128 => "u128",
            Ty::Usize => "usize",
        }
    }
}

/// A value with the low `n` bits set (`n` is clamped to 128).
pub fn all_ones(n: u32) -> u128 {
    if n >= 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    }
}

/// A non-empty unsigned range `lo ..= hi`. Invariant: `lo <= hi`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: u128,
    /// Inclusive upper bound.
    pub hi: u128,
}

/// The unbounded interval — what an unknown `u128` can hold.
pub const TOP: Interval = Interval {
    lo: 0,
    hi: u128::MAX,
};

/// Widening thresholds: the bounds that matter to bit-domain proofs
/// (type widths and maxima, the 128-bit address constants, and the small
/// loop bounds the workspace iterates to). Sorted ascending.
const THRESHOLDS: &[u128] = &[
    0,
    1,
    2,
    3,
    4,
    7,
    8,
    15,
    16,
    31,
    32,
    63,
    64,
    100,
    127,
    128,
    255,
    256,
    1023,
    1024,
    65_535,
    65_536,
    u32::MAX as u128,
    1 << 32,
    u64::MAX as u128,
    // 2^64, the first value outside u64.
    1 << 64,
    u128::MAX,
];

impl Interval {
    /// The singleton interval `[v, v]`.
    pub fn exact(v: u128) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// `[lo, hi]`, normalising a reversed pair to the singleton hull
    /// (callers never intend bottom; an infeasible range is handled at
    /// the environment level).
    pub fn new(lo: u128, hi: u128) -> Interval {
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// The full range of a machine type.
    pub fn top_of(ty: Ty) -> Interval {
        Interval {
            lo: 0,
            hi: ty.max(),
        }
    }

    /// True when every value of `self` is also in `other`.
    pub fn within(&self, other: &Interval) -> bool {
        other.lo <= self.lo && self.hi <= other.hi
    }

    /// True when the interval is a single value.
    pub fn is_exact(&self) -> bool {
        self.lo == self.hi
    }

    /// Least upper bound: the range hull.
    pub fn join(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Widening: where `next` escapes `self`, jump the escaping bound to
    /// the nearest enclosing threshold instead of creeping one loop
    /// iteration at a time. Guarantees termination of loop fixpoints in
    /// at most `THRESHOLDS.len()` steps per bound.
    pub fn widen(&self, next: &Interval) -> Interval {
        let lo = if next.lo < self.lo {
            THRESHOLDS
                .iter()
                .rev()
                .copied()
                .find(|t| *t <= next.lo)
                .unwrap_or(0)
        } else {
            self.lo
        };
        let hi = if next.hi > self.hi {
            THRESHOLDS
                .iter()
                .copied()
                .find(|t| *t >= next.hi)
                .unwrap_or(u128::MAX)
        } else {
            self.hi
        };
        Interval { lo, hi }
    }

    /// Clamp to a machine type: if the interval fits, keep it; if any
    /// part is out of range the value may have wrapped, so degrade to
    /// the type's full range (sound for wrapping casts and stores).
    pub fn clamp_to(&self, ty: Ty) -> Interval {
        if self.hi <= ty.max() {
            *self
        } else {
            Interval::top_of(ty)
        }
    }

    // --- transfer functions ------------------------------------------

    /// `+`: `None` when the sum can wrap.
    pub fn add(&self, rhs: &Interval) -> Option<Interval> {
        Some(Interval {
            lo: self.lo.checked_add(rhs.lo)?,
            hi: self.hi.checked_add(rhs.hi)?,
        })
    }

    /// `-`: `None` when the difference can wrap (any rhs value can
    /// exceed any lhs value).
    pub fn sub(&self, rhs: &Interval) -> Option<Interval> {
        if rhs.hi > self.lo {
            return None;
        }
        Some(Interval {
            lo: self.lo - rhs.hi,
            hi: self.hi - rhs.lo,
        })
    }

    /// `*`: `None` when the product can wrap.
    pub fn mul(&self, rhs: &Interval) -> Option<Interval> {
        Some(Interval {
            lo: self.lo.checked_mul(rhs.lo)?,
            hi: self.hi.checked_mul(rhs.hi)?,
        })
    }

    /// `/`: total once the divisor's reachable range is clamped away
    /// from zero (a zero divisor is a panic, which is R001/L006
    /// territory, not a range question — assuming it away only ever
    /// *widens* the result here because a larger divisor shrinks the
    /// quotient).
    pub fn div(&self, rhs: &Interval) -> Interval {
        let d_lo = rhs.lo.max(1);
        let d_hi = rhs.hi.max(1);
        Interval {
            lo: self.lo / d_hi,
            hi: self.hi / d_lo,
        }
    }

    /// `%`: result is always `< rhs.hi` and never exceeds the lhs.
    pub fn rem(&self, rhs: &Interval) -> Interval {
        let bound = rhs.hi.saturating_sub(1).min(self.hi);
        Interval { lo: 0, hi: bound }
    }

    /// `&`: bounded by the smaller operand — the mask rule that proves
    /// `x & 0xf`-style extractions with no knowledge of `x`.
    pub fn bitand(&self, rhs: &Interval) -> Interval {
        Interval {
            lo: 0,
            hi: self.hi.min(rhs.hi),
        }
    }

    /// `|`: at least the larger lower bound, at most all bits of the
    /// wider operand.
    pub fn bitor(&self, rhs: &Interval) -> Interval {
        Interval {
            lo: self.lo.max(rhs.lo),
            hi: all_ones(128 - self.hi.max(rhs.hi).leading_zeros()),
        }
    }

    /// `^`: at most all bits of the wider operand.
    pub fn bitxor(&self, rhs: &Interval) -> Interval {
        Interval {
            lo: 0,
            hi: all_ones(128 - self.hi.max(rhs.hi).leading_zeros()),
        }
    }

    /// `<<` on a value of carrier width 128: `None` when the amount can
    /// reach 128 (UB-in-the-abstract: the concrete panic/wrap question
    /// is the obligation, this is just the range) or when set bits can
    /// be shifted out.
    pub fn shl(&self, rhs: &Interval) -> Option<Interval> {
        if rhs.hi >= 128 {
            return None;
        }
        let lo = self.lo.checked_shl(rhs.lo as u32)?;
        let hi = self.hi.checked_shl(rhs.hi as u32)?;
        if hi >> (rhs.hi as u32) != self.hi {
            return None;
        }
        Some(Interval { lo, hi })
    }

    /// `>>`: total — amounts at or beyond the width yield 0.
    pub fn shr(&self, rhs: &Interval) -> Interval {
        let shr = |v: u128, n: u128| -> u128 {
            if n >= 128 {
                0
            } else {
                v >> (n as u32)
            }
        };
        Interval {
            lo: shr(self.lo, rhs.hi),
            hi: shr(self.hi, rhs.lo),
        }
    }

    /// `min` as an interval operation.
    pub fn min_iv(&self, rhs: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(rhs.lo),
            hi: self.hi.min(rhs.hi),
        }
    }

    /// `max` as an interval operation.
    pub fn max_iv(&self, rhs: &Interval) -> Interval {
        Interval {
            lo: self.lo.max(rhs.lo),
            hi: self.hi.max(rhs.hi),
        }
    }

    /// `saturating_sub`.
    pub fn saturating_sub(&self, rhs: &Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_sub(rhs.hi),
            hi: self.hi.saturating_sub(rhs.lo),
        }
    }

    /// `saturating_add` within type `ty`.
    pub fn saturating_add(&self, rhs: &Interval, ty: Ty) -> Interval {
        Interval {
            lo: self.lo.saturating_add(rhs.lo).min(ty.max()),
            hi: self.hi.saturating_add(rhs.hi).min(ty.max()),
        }
    }

    // --- refinement under comparisons --------------------------------
    //
    // Each returns the refinement of `self` assuming the comparison
    // holds; `None` means the assumption is infeasible (the branch is
    // dead and the caller kills the environment).

    /// Assume `self < bound`.
    pub fn refine_lt(&self, bound: &Interval) -> Option<Interval> {
        let cap = bound.hi.checked_sub(1)?;
        if self.lo > cap {
            return None;
        }
        Some(Interval {
            lo: self.lo,
            hi: self.hi.min(cap),
        })
    }

    /// Assume `self <= bound`.
    pub fn refine_le(&self, bound: &Interval) -> Option<Interval> {
        if self.lo > bound.hi {
            return None;
        }
        Some(Interval {
            lo: self.lo,
            hi: self.hi.min(bound.hi),
        })
    }

    /// Assume `self > bound`.
    pub fn refine_gt(&self, bound: &Interval) -> Option<Interval> {
        let floor = bound.lo.checked_add(1)?;
        if self.hi < floor {
            return None;
        }
        Some(Interval {
            lo: self.lo.max(floor),
            hi: self.hi,
        })
    }

    /// Assume `self >= bound`.
    pub fn refine_ge(&self, bound: &Interval) -> Option<Interval> {
        if self.hi < bound.lo {
            return None;
        }
        Some(Interval {
            lo: self.lo.max(bound.lo),
            hi: self.hi,
        })
    }

    /// Assume `self == bound`: intersect.
    pub fn refine_eq(&self, bound: &Interval) -> Option<Interval> {
        let lo = self.lo.max(bound.lo);
        let hi = self.hi.min(bound.hi);
        if lo > hi {
            return None;
        }
        Some(Interval { lo, hi })
    }

    /// Assume `self != bound`: only refutable when `bound` is exact and
    /// sits on an edge of `self`.
    pub fn refine_ne(&self, bound: &Interval) -> Option<Interval> {
        if bound.is_exact() {
            if self.is_exact() && self.lo == bound.lo {
                return None;
            }
            if self.lo == bound.lo {
                return Some(Interval {
                    lo: self.lo + 1,
                    hi: self.hi,
                });
            }
            if self.hi == bound.lo {
                return Some(Interval {
                    lo: self.lo,
                    hi: self.hi - 1,
                });
            }
        }
        Some(*self)
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_exact() {
            write!(f, "[{}]", self.lo)
        } else if self.hi == u128::MAX {
            write!(f, "[{},max]", self.lo)
        } else {
            write!(f, "[{},{}]", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_the_hull() {
        let a = Interval::new(2, 5);
        let b = Interval::new(10, 12);
        assert_eq!(a.join(&b), Interval::new(2, 12));
        assert_eq!(b.join(&a), Interval::new(2, 12));
        assert_eq!(a.join(&a), a);
    }

    #[test]
    fn widening_terminates_on_a_climbing_bound() {
        // Simulate `i += 1` from [0,0]: widening must reach a fixpoint
        // in at most one step per threshold, not one per loop iteration.
        let mut head = Interval::exact(0);
        let mut steps = 0;
        loop {
            let next = head
                .add(&Interval::exact(1))
                .unwrap_or(TOP)
                .join(&Interval::exact(0));
            let widened = head.widen(&next);
            if widened == head {
                break;
            }
            head = widened;
            steps += 1;
            assert!(steps <= 32, "widening failed to terminate");
        }
        // The fixpoint covers everything the loop can produce.
        assert_eq!(head.lo, 0);
        assert!(head.hi >= 1);
    }

    #[test]
    fn widening_lands_on_bit_domain_thresholds() {
        // [0,3] escaping to [0,5] should widen to the next threshold
        // (7), not to infinity.
        let w = Interval::new(0, 3).widen(&Interval::new(0, 5));
        assert_eq!(w, Interval::new(0, 7));
        // Escaping past 128 lands on 255 — the u8 proof bound.
        let w = Interval::new(0, 128).widen(&Interval::new(0, 130));
        assert_eq!(w, Interval::new(0, 255));
    }

    #[test]
    fn mask_rule_bounds_by_the_smaller_operand() {
        assert_eq!(TOP.bitand(&Interval::exact(0xf)), Interval::new(0, 0xf));
        assert_eq!(Interval::new(100, 200).bitand(&TOP), Interval::new(0, 200));
    }

    #[test]
    fn shifts_respect_width() {
        // >> is total: huge amounts go to zero.
        assert_eq!(TOP.shr(&Interval::exact(128)), Interval::exact(0));
        assert_eq!(
            Interval::exact(0xff00).shr(&Interval::exact(8)),
            Interval::exact(0xff)
        );
        // << refuses amounts that can reach the width.
        assert!(Interval::exact(1).shl(&Interval::new(0, 128)).is_none());
        assert_eq!(
            Interval::exact(1).shl(&Interval::new(0, 127)),
            Some(Interval::new(1, 1 << 127))
        );
    }

    #[test]
    fn sub_is_none_when_it_can_wrap() {
        assert!(Interval::new(0, 10).sub(&Interval::new(1, 1)).is_none());
        assert_eq!(
            Interval::new(5, 10).sub(&Interval::new(1, 2)),
            Some(Interval::new(3, 9))
        );
    }

    #[test]
    fn refinement_narrows_and_detects_dead_branches() {
        let x = Interval::new(0, 200);
        assert_eq!(
            x.refine_le(&Interval::exact(128)),
            Some(Interval::new(0, 128))
        );
        assert_eq!(
            x.refine_gt(&Interval::exact(128)),
            Some(Interval::new(129, 200))
        );
        // x in [0,10] can never be > 20: dead branch.
        assert!(Interval::new(0, 10)
            .refine_gt(&Interval::exact(20))
            .is_none());
        // != on an exact edge trims it.
        assert_eq!(
            Interval::new(0, 10).refine_ne(&Interval::exact(0)),
            Some(Interval::new(1, 10))
        );
        assert!(Interval::exact(5).refine_ne(&Interval::exact(5)).is_none());
    }

    #[test]
    fn clamp_degrades_to_type_top_on_possible_wrap() {
        assert_eq!(
            Interval::new(0, 300).clamp_to(Ty::U8),
            Interval::new(0, 255)
        );
        assert_eq!(
            Interval::new(0, 300).clamp_to(Ty::U16),
            Interval::new(0, 300)
        );
    }
}
