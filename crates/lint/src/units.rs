//! The unit domain layered on top of the interval lattice.
//!
//! The paper's index spaces are tiny and easy to confuse: a *bit*
//! position (0..=128), a *nybble* index (0..=32), and a 16-bit *segment*
//! value all fit in a `u8`/`u16`, so the type system cannot tell them
//! apart — but a nybble index flowing into a shift-amount parameter is
//! exactly the off-by-4× corruption R002 exists to catch. Each abstract
//! value therefore carries a [`Unit`] tag alongside its interval:
//!
//! * tags enter the analysis at annotated parameters
//!   (`[rules.R002] bits_params = [...]` in `lint.toml`);
//! * linear arithmetic (`+`, `-`) preserves a tag when the other operand
//!   is untagged ([`Unit::Opaque`] is transparent: adding a plain count
//!   to a bit offset yields a bit offset) and *flags* mixing two
//!   distinct tags (a nybble plus a bit position is a category error);
//! * scaling and bitwise operations destroy tags (4 × nybble-index *is*
//!   a bit offset, so the result re-enters the analysis untagged and is
//!   re-checked by range at the next annotated boundary);
//! * joins of distinct tags degrade to [`Unit::Opaque`].
//!
//! Unit mismatch at an annotated call boundary is reported even when the
//! value's *range* happens to fit, because a fitting range is how these
//! bugs survive review.

use crate::config::Config;
use crate::intervals::Interval;

/// What index space a value lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unit {
    /// Bit position / prefix length / shift amount: 0..=128.
    Bits,
    /// Nybble index into a 128-bit address: 0..=32.
    Nybbles,
    /// 16-bit address segment value: 0..=65535.
    Segments,
    /// A count of things (loop trip counts, set sizes) — unit-checked
    /// only for range, never for mixing.
    Count,
    /// No unit information.
    Opaque,
}

impl Unit {
    /// The admissible range of the unit — the precondition an annotated
    /// parameter imposes on its arguments.
    pub fn range(self) -> Interval {
        match self {
            Unit::Bits => Interval::new(0, 128),
            Unit::Nybbles => Interval::new(0, 32),
            Unit::Segments => Interval::new(0, 65_535),
            Unit::Count | Unit::Opaque => crate::intervals::TOP,
        }
    }

    /// Human name used in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Unit::Bits => "bits",
            Unit::Nybbles => "nybbles",
            Unit::Segments => "segments",
            Unit::Count => "count",
            Unit::Opaque => "opaque",
        }
    }

    /// Lattice join: equal tags survive, anything else is Opaque.
    pub fn join(self, other: Unit) -> Unit {
        if self == other {
            self
        } else {
            Unit::Opaque
        }
    }

    /// Tag propagation through linear ops (`+`, `-`): Opaque is
    /// transparent, equal tags survive, and two distinct concrete tags
    /// are a mixing error carried back to the caller for reporting.
    pub fn combine_linear(self, other: Unit) -> Result<Unit, (Unit, Unit)> {
        match (self, other) {
            (Unit::Opaque, u) | (u, Unit::Opaque) => Ok(u),
            (a, b) if a == b => Ok(a),
            // Counts mix freely with anything (adding 1 to a bit offset
            // is still a bit offset).
            (Unit::Count, u) | (u, Unit::Count) => Ok(u),
            (a, b) => Err((a, b)),
        }
    }
}

/// Parameter unit annotations from `[rules.R002]` in `lint.toml`.
///
/// Each entry is a `::`-separated suffix pattern matched against a
/// callee the same way rule scopes match paths:
///
/// * `p` — any parameter named `p` of any function (broadest; only safe
///   when the name is unambiguous in scope);
/// * `densify::p` — parameter `p` of any function named `densify`;
/// * `Addr::nybble::i` — parameter `i` of method `nybble` on type
///   `Addr`.
///
/// Annotated names should be kept distinct per function name: the
/// checker resolves method calls by name when the receiver type is
/// unknown, so two same-named methods with *different* annotations on
/// the same parameter position would both impose their preconditions.
#[derive(Clone, Debug, Default)]
pub struct Annotations {
    /// `(pattern segments, unit)`, pattern as written minus the param.
    entries: Vec<(Vec<String>, String, Unit)>,
}

impl Annotations {
    /// Reads `bits_params` / `nybble_params` / `seg_params` from the
    /// `[rules.R002]` config section.
    pub fn from_config(cfg: &Config) -> Annotations {
        let mut entries = Vec::new();
        let keys: [(&str, Unit); 3] = [
            ("bits_params", Unit::Bits),
            ("nybble_params", Unit::Nybbles),
            ("seg_params", Unit::Segments),
        ];
        for (key, unit) in keys {
            for raw in cfg.list("rules.R002", key) {
                let mut segs: Vec<String> = raw.split("::").map(str::to_string).collect();
                if let Some(param) = segs.pop() {
                    entries.push((segs, param, unit));
                }
            }
        }
        Annotations { entries }
    }

    /// The unit (if any) annotated on parameter `param` of the function
    /// described by `(self_ty, fn_name)`.
    pub fn param_unit(&self, self_ty: Option<&str>, fn_name: &str, param: &str) -> Option<Unit> {
        for (segs, p, unit) in &self.entries {
            if p != param {
                continue;
            }
            let matches = match segs.len() {
                0 => true,
                1 => segs.first().is_some_and(|s| s == fn_name),
                _ => {
                    segs.last().is_some_and(|s| s == fn_name)
                        && segs
                            .get(segs.len() - 2)
                            .is_some_and(|s| Some(s.as_str()) == self_ty)
                }
            };
            if matches {
                return Some(*unit);
            }
        }
        None
    }

    /// True when any function named `fn_name` (any receiver) annotates
    /// `param` — used when a method call's receiver type is unknown.
    pub fn any_for_name(&self, fn_name: &str, param: &str) -> Option<Unit> {
        for (segs, p, unit) in &self.entries {
            if p != param {
                continue;
            }
            let ok = match segs.len() {
                0 => true,
                _ => segs.last().is_some_and(|s| s == fn_name),
            };
            if ok {
                return Some(*unit);
            }
        }
        None
    }

    /// True when no annotations were configured.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_combination_propagates_and_flags_mixing() {
        // Opaque is transparent in both positions.
        assert_eq!(Unit::Bits.combine_linear(Unit::Opaque), Ok(Unit::Bits));
        assert_eq!(
            Unit::Opaque.combine_linear(Unit::Nybbles),
            Ok(Unit::Nybbles)
        );
        // Like units survive.
        assert_eq!(Unit::Bits.combine_linear(Unit::Bits), Ok(Unit::Bits));
        // Counts shift an index without changing its space.
        assert_eq!(Unit::Count.combine_linear(Unit::Bits), Ok(Unit::Bits));
        // Distinct concrete units are the bug R002 hunts.
        assert_eq!(
            Unit::Nybbles.combine_linear(Unit::Bits),
            Err((Unit::Nybbles, Unit::Bits))
        );
    }

    #[test]
    fn join_degrades_to_opaque() {
        assert_eq!(Unit::Bits.join(Unit::Bits), Unit::Bits);
        assert_eq!(Unit::Bits.join(Unit::Nybbles), Unit::Opaque);
    }

    #[test]
    fn annotations_match_by_suffix() {
        let cfg = Config::parse(
            r#"
[rules.R002]
bits_params = ["Addr::mask::len", "densify::p"]
nybble_params = ["Addr::nybble::i"]
"#,
        )
        .expect("config parses");
        let ann = Annotations::from_config(&cfg);
        assert_eq!(
            ann.param_unit(Some("Addr"), "mask", "len"),
            Some(Unit::Bits)
        );
        // Wrong receiver type: no match.
        assert_eq!(ann.param_unit(Some("Prefix"), "mask", "len"), None);
        // Free-function pattern matches regardless of receiver.
        assert_eq!(ann.param_unit(None, "densify", "p"), Some(Unit::Bits));
        assert_eq!(ann.any_for_name("nybble", "i"), Some(Unit::Nybbles));
        assert_eq!(ann.any_for_name("nybble", "x"), None);
    }
}
