//! `v6census-lint` — the workspace's static-analysis gate.
//!
//! ```text
//! cargo run -p lint -- --workspace                  # human diagnostics
//! cargo run -p lint -- --workspace --deny all       # CI gate
//! cargo run -p lint -- --format json path/to.rs     # machine output
//! cargo run -p lint -- --workspace --format github  # PR annotations
//! ```
//!
//! Exit codes follow the workspace contract: 0 clean, 1 denied
//! findings, 2 usage or configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

use lint::engine::{find_root, lint_files, lint_workspace, load_config, SeverityMap};
use lint::report::Severity;
use lint::rules::{registry, semantic_registry};

const USAGE: &str = "\
v6census-lint: static analysis for the v6census workspace

USAGE:
    v6census-lint [OPTIONS] [--workspace | FILES...]

OPTIONS:
    --workspace          lint every .rs file under src/ and crates/*/src/
    --deny <rule|all>    treat a rule's findings as fatal (default: all deny)
    --warn <rule|all>    report a rule's findings without failing
    --format <human|json|github>  output format (default: human);
                         `github` emits ::error/::warning workflow
                         annotations for Actions
    --config <path>      lint config (default: <root>/lint.toml)
    --root <path>        workspace root (default: discovered from cwd)
    --list-rules         print the rule registry and exit
    -h, --help           this text

EXIT CODES:
    0  no denied findings
    1  denied findings
    2  usage or configuration error
";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
    Github,
}

struct Args {
    workspace: bool,
    files: Vec<PathBuf>,
    severities: SeverityMap,
    format: Format,
    config: Option<PathBuf>,
    root: Option<PathBuf>,
    list_rules: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        files: Vec::new(),
        severities: SeverityMap::default(),
        format: Format::Human,
        config: None,
        root: None,
        list_rules: false,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--list-rules" => args.list_rules = true,
            "--deny" | "--warn" => {
                let rule = it
                    .next()
                    .ok_or_else(|| format!("{a} requires a rule id or `all`"))?;
                let sev = if a == "--deny" {
                    Severity::Deny
                } else {
                    Severity::Warn
                };
                args.severities.push(rule, sev);
            }
            "--format" => match it.next().map(String::as_str) {
                Some("human") => args.format = Format::Human,
                Some("json") => args.format = Format::Json,
                Some("github") => args.format = Format::Github,
                other => {
                    return Err(format!(
                        "--format expects `human`, `json`, or `github`, got {other:?}"
                    ))
                }
            },
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config requires a path")?));
            }
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root requires a path")?));
            }
            "-h" | "--help" => return Err(String::new()),
            f if f.starts_with('-') => return Err(format!("unknown flag {f}")),
            f => args.files.push(PathBuf::from(f)),
        }
    }
    if !args.list_rules && !args.workspace && args.files.is_empty() {
        return Err("nothing to lint: pass --workspace or file paths".into());
    }
    if args.workspace && !args.files.is_empty() {
        return Err("--workspace and explicit files are mutually exclusive".into());
    }
    Ok(args)
}

fn run() -> Result<ExitCode, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv)?;

    if args.list_rules {
        for rule in registry() {
            println!("{}  {:<24} {}", rule.id(), rule.name(), rule.describe());
        }
        for rule in semantic_registry() {
            println!("{}  {:<24} {}", rule.id(), rule.name(), rule.describe());
        }
        println!("P000  pragma-syntax            malformed `// lint:` pragma or missing reason");
        println!("P001  unused-pragma            allow pragma that suppresses nothing");
        return Ok(ExitCode::SUCCESS);
    }

    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let root = args.root.clone().unwrap_or_else(|| find_root(&cwd));
    let cfg = match &args.config {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
            lint::config::Config::parse(&text).map_err(|e| e.to_string())?
        }
        None => load_config(&root).map_err(|e| e.to_string())?,
    };

    let report = if args.workspace {
        lint_workspace(&root, &cfg, &args.severities)
    } else {
        lint_files(&root, &args.files, &cfg, &args.severities)
    }
    .map_err(|e| e.to_string())?;

    match args.format {
        Format::Human => print!("{}", report.render_human()),
        Format::Json => print!("{}", report.render_json()),
        Format::Github => print!("{}", report.render_github()),
    }
    Ok(if report.exit_code() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            if msg.is_empty() {
                // -h / --help.
                print!("{USAGE}");
                ExitCode::SUCCESS
            } else {
                eprintln!("v6census-lint: {msg}");
                eprint!("{USAGE}");
                ExitCode::from(2)
            }
        }
    }
}
