//! `lint.toml` — rule scopes and rule-specific settings.
//!
//! The workspace is deliberately dependency-free, so this is a
//! hand-rolled parser for the small TOML subset the checked-in config
//! actually uses: `[section]` headers, `key = "string"`,
//! `key = ["a", "b"]` string arrays (single- or multi-line), and `#`
//! comments.
//! Anything outside that subset is a hard error — better to fail the
//! lint run than to silently mis-scope a rule.

use std::collections::BTreeMap;

/// Parsed configuration: `section -> key -> values`. Scalars are stored
/// as one-element value lists.
#[derive(Clone, Debug, Default)]
pub struct Config {
    sections: BTreeMap<String, BTreeMap<String, Vec<String>>>,
}

impl Config {
    /// Parses config text. Errors carry the offending line number.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate();
        while let Some((i, raw)) = lines.next() {
            let line_no = i + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                cfg.sections.entry(section.clone()).or_default();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("lint.toml:{line_no}: expected `key = value`"));
            };
            // A multi-line array continues until its closing `]`.
            let mut value = value.trim().to_string();
            while value.starts_with('[') && !value.ends_with(']') {
                let Some((j, cont)) = lines.next() else {
                    return Err(format!("lint.toml:{line_no}: unterminated `[` array"));
                };
                let cont = strip_comment(cont).trim();
                let _ = j;
                value.push(' ');
                value.push_str(cont);
            }
            let values =
                parse_value(value.trim()).map_err(|e| format!("lint.toml:{line_no}: {e}"))?;
            cfg.sections
                .entry(section.clone())
                .or_default()
                .insert(key.trim().to_string(), values);
        }
        Ok(cfg)
    }

    /// The string list at `section.key`, empty when absent.
    pub fn list(&self, section: &str, key: &str) -> &[String] {
        self.sections
            .get(section)
            .and_then(|s| s.get(key))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// True when `section` exists at all.
    pub fn has_section(&self, section: &str) -> bool {
        self.sections.contains_key(section)
    }

    /// True when `rel` is inside one of the rule's configured `paths`
    /// prefixes. A rule with no configured paths applies everywhere
    /// (the permissive default keeps fixture tests config-free; the
    /// checked-in `lint.toml` scopes every rule explicitly).
    pub fn rule_applies(&self, rule_id: &str, rel: &str) -> bool {
        let paths = self.list(&format!("rules.{rule_id}"), "paths");
        paths.is_empty() || paths.iter().any(|p| rel.starts_with(p.as_str()))
    }
}

/// Strips a trailing `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// Parses `"string"` or `["a", "b"]` into a value list.
fn parse_value(v: &str) -> Result<Vec<String>, String> {
    if let Some(inner) = v.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
        let inner = inner.trim();
        if inner.is_empty() {
            return Ok(Vec::new());
        }
        inner
            .split(',')
            .map(str::trim)
            .filter(|item| !item.is_empty()) // tolerate a trailing comma
            .map(parse_string)
            .collect()
    } else {
        Ok(vec![parse_string(v)?])
    }
}

/// Parses one double-quoted string (no escape support needed here).
fn parse_string(s: &str) -> Result<String, String> {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a double-quoted string, got {s:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_subset() {
        let cfg = Config::parse(
            "# top comment\n[rules.L001]\npaths = [\"a/src\", \"b/src\"] # trailing\n\n[rules.L005]\nexit_idents = [\"EXIT_OK\"]\nsingle = \"x\"\n",
        )
        .expect("parses");
        assert_eq!(cfg.list("rules.L001", "paths"), ["a/src", "b/src"]);
        let multi =
            Config::parse("[rules.L002]\npaths = [\n    \"x/src\", # one\n    \"y/src\",\n]\n")
                .expect("multi-line arrays parse");
        assert_eq!(multi.list("rules.L002", "paths"), ["x/src", "y/src"]);
        assert_eq!(cfg.list("rules.L005", "exit_idents"), ["EXIT_OK"]);
        assert_eq!(cfg.list("rules.L005", "single"), ["x"]);
        assert!(cfg.list("rules.L009", "paths").is_empty());
        assert!(cfg.has_section("rules.L001"));
    }

    #[test]
    fn rejects_what_it_cannot_represent() {
        assert!(Config::parse("key value\n").is_err());
        assert!(Config::parse("key = [1, 2]\n").is_err());
        assert!(Config::parse("key = bare\n").is_err());
    }
}
