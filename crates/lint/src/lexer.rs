//! A dependency-free token-level lexer for Rust source.
//!
//! This is the semantic layer's foundation: everything above it — the
//! per-line blanking in [`crate::scan`], the symbol table in
//! [`crate::symbols`], the call graph in [`crate::callgraph`] — consumes
//! this token stream rather than re-deriving lexical structure from raw
//! text. It handles the constructs that defeat heuristic scanners:
//!
//! * raw strings with `#` fences (`r"…"`, `r#"…"#`, `r##"…"##`, …) and
//!   their byte variants (`b"…"`, `br#"…"#`);
//! * char literals vs lifetimes (`'x'`, `'\''`, `'\u{1F600}'` vs `'a`,
//!   `'static`) — including the labelled-loop form `'outer:`;
//! * nested block comments (`/* a /* b */ c */`) and both doc-comment
//!   flavours (`///`, `//!`, `/** */`, `/*! */`);
//! * raw identifiers (`r#match`), numeric literals with type suffixes
//!   (`1u128`, `0xff_u8`, `1.5e3`), and greedy multi-character
//!   operators (`::`, `->`, `<<=`, `..=`, …).
//!
//! Tokens carry byte spans and 1-based start/end lines, so consumers can
//! map any token back to source coordinates for diagnostics.

/// What kind of lexeme a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `impl`, `run_census`, `r#match`).
    Ident,
    /// Lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// Char or byte-char literal (`'x'`, `b'\n'`, `'\''`).
    Char,
    /// String literal of any flavour; `text` holds the *contents*
    /// (between the delimiters, escapes unprocessed).
    Str,
    /// Integer literal (`42`, `0xff_u8`, `1u128`).
    Int,
    /// Float literal (`1.5`, `2e10`, `1.0f64`).
    Float,
    /// Operator or punctuation, greedily matched (`::`, `<<`, `{`).
    Op,
    /// `//` comment; `text` holds everything after the `//` marker.
    /// `doc` is true for `///` and `//!`.
    LineComment {
        /// Doc-comment flavour (`///` or `//!`).
        doc: bool,
    },
    /// `/* */` comment (possibly nested, possibly multi-line).
    BlockComment {
        /// Doc-comment flavour (`/**` or `/*!`).
        doc: bool,
    },
}

/// One lexeme with its source coordinates.
#[derive(Clone, Debug)]
pub struct Token {
    /// The lexeme kind.
    pub kind: TokKind,
    /// Kind-dependent text: identifier spelling, string/comment
    /// contents, literal spelling, or the operator itself.
    pub text: String,
    /// Byte offset of the first byte in the source.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line the token starts on.
    pub line: usize,
    /// 1-based line the token ends on (differs from `line` only for
    /// multi-line strings and block comments).
    pub end_line: usize,
}

impl Token {
    /// True for identifier tokens spelling exactly `kw`.
    pub fn is_ident(&self, kw: &str) -> bool {
        self.kind == TokKind::Ident && self.text == kw
    }

    /// True for operator tokens spelling exactly `op`.
    pub fn is_op(&self, op: &str) -> bool {
        self.kind == TokKind::Op && self.text == op
    }
}

/// The integer type suffix of a numeric literal's spelling, if any
/// (`"1u128"` → `Some("u128")`). Sized suffixes mark deliberate
/// bit-math operands for rule L006.
pub fn int_suffix(text: &str) -> Option<&'static str> {
    const SUFFIXES: &[&str] = &[
        "u128", "u64", "u32", "u16", "u8", "usize", "i128", "i64", "i32", "i16", "i8", "isize",
    ];
    SUFFIXES.iter().find(|s| text.ends_with(**s)).copied()
}

/// Multi-character operators, longest first so matching is greedy.
/// Single characters fall through to one-char `Op` tokens.
const MULTI_OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "<<", ">>", "&&", "||", "+=", "-=", "*=", "/=",
    "%=", "^=", "&=", "|=", "==", "!=", "<=", ">=", "..",
];

/// Lexes `src` into a token vector. The lexer is total: any byte
/// sequence produces a token stream (unterminated literals run to end of
/// input), so a syntactically broken file degrades to imprecise tokens
/// rather than a crash — the lint must never panic on the code it
/// audits.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let c = self.bytes[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.pos, 0, false),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' | b'R' | b'B' if self.raw_or_byte_string() => {}
                c if c.is_ascii_digit() => self.number(),
                c if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => self.ident(),
                _ => self.operator(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, text: String, start: usize, start_line: usize) {
        self.out.push(Token {
            kind,
            text,
            start,
            end: self.pos,
            line: start_line,
            end_line: self.line,
        });
    }

    /// Advances one char (multi-byte safe), tracking newlines.
    fn bump(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
        while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
            self.pos += 1; // skip UTF-8 continuation bytes
        }
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        let start_line = self.line;
        self.pos += 2;
        // `///` (but not `////`) and `//!` are doc comments.
        let doc = match self.peek(0) {
            Some(b'!') => true,
            Some(b'/') => self.peek(1) != Some(b'/'),
            _ => false,
        };
        let text_start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        let text = self.src[text_start..self.pos].to_string();
        self.push(TokKind::LineComment { doc }, text, start, start_line);
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let start_line = self.line;
        self.pos += 2;
        // `/**` (but not `/***` or the empty `/**/`) and `/*!` are doc.
        let doc = match self.peek(0) {
            Some(b'!') => true,
            Some(b'*') => self.peek(1) != Some(b'*') && self.peek(1) != Some(b'/'),
            _ => false,
        };
        let text_start = self.pos;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.bump();
            }
        }
        let text_end = self.pos.saturating_sub(2).max(text_start);
        let text = self.src[text_start..text_end].to_string();
        self.push(TokKind::BlockComment { doc }, text, start, start_line);
    }

    /// Lexes a string literal starting at the opening `"` (`self.pos`
    /// must be on it), with `hashes` fence characters to match at the
    /// close. `raw` disables backslash escapes.
    fn string(&mut self, start: usize, hashes: usize, raw: bool) {
        let start_line = self.line;
        self.pos += 1; // opening quote
        let content_start = self.pos;
        let content_end;
        loop {
            if self.pos >= self.bytes.len() {
                content_end = self.pos;
                break;
            }
            let c = self.bytes[self.pos];
            if c == b'\\' && !raw {
                self.pos += 1; // the backslash
                if self.pos < self.bytes.len() {
                    self.bump(); // the escaped char (may be multi-byte)
                }
                continue;
            }
            if c == b'"' {
                // A candidate close: raw strings also need the fence.
                let fence_ok = (0..hashes).all(|i| self.peek(1 + i) == Some(b'#'));
                if fence_ok {
                    content_end = self.pos;
                    self.pos += 1 + hashes;
                    break;
                }
            }
            self.bump();
        }
        let text = self.src[content_start..content_end.min(self.src.len())].to_string();
        self.push(TokKind::Str, text, start, start_line);
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`, `b'x'` and raw
    /// identifiers `r#ident`. Returns false when the `r`/`b` is just the
    /// start of an ordinary identifier (caller lexes it as one).
    fn raw_or_byte_string(&mut self) -> bool {
        let start = self.pos;
        let c = self.bytes[self.pos];
        let mut look = self.pos + 1;
        let mut raw = false;
        if (c == b'b' || c == b'B') && self.bytes.get(look) == Some(&b'\'') {
            // Byte-char literal `b'x'`: reuse the char lexer.
            self.pos += 1;
            self.char_or_lifetime();
            return true;
        }
        if (c == b'b' || c == b'B')
            && self
                .bytes
                .get(look)
                .is_some_and(|&r| r == b'r' || r == b'R')
        {
            raw = true;
            look += 1;
        }
        if c == b'r' || c == b'R' {
            raw = true;
        }
        let mut hashes = 0usize;
        while self.bytes.get(look) == Some(&b'#') {
            hashes += 1;
            look += 1;
        }
        match self.bytes.get(look) {
            Some(&b'"') if raw || hashes == 0 => {
                self.pos = look;
                self.string(start, if raw { hashes } else { 0 }, raw);
                true
            }
            Some(&b'"') => false,
            _ if hashes == 1 && raw && c == b'r' => {
                // Raw identifier `r#ident`: lex as an identifier token
                // spelled without the `r#` so `r#match` == ident "match"
                // …except it is *not* the keyword, so keep the prefix.
                self.pos = start;
                self.ident();
                true
            }
            _ => false,
        }
    }

    /// Disambiguates char literals from lifetimes/labels at a `'`.
    fn char_or_lifetime(&mut self) {
        let start = self.pos;
        let start_line = self.line;
        // A char literal is `'` followed by an escape, or by exactly one
        // char and a closing `'`. `'a'` is a char; `'a` and `'a:` are
        // lifetimes/labels; `'\''` is a char.
        let next = self.peek(1);
        let is_char = match next {
            Some(b'\\') => true,
            Some(b'\'') => false, // `''` — broken; treat as ops
            Some(_) => {
                // Find where the next char ends (multi-byte safe) and
                // check for a closing quote right after.
                let mut end = self.pos + 2;
                while end < self.bytes.len() && (self.bytes[end] & 0xc0) == 0x80 {
                    end += 1;
                }
                self.bytes.get(end) == Some(&b'\'')
            }
            None => false,
        };
        if !is_char {
            if next.is_some_and(|c| c == b'_' || c.is_ascii_alphabetic()) {
                // Lifetime or label.
                self.pos += 1;
                let text_start = self.pos;
                while self
                    .peek(0)
                    .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
                {
                    self.pos += 1;
                }
                let text = self.src[text_start..self.pos].to_string();
                self.push(TokKind::Lifetime, text, start, start_line);
            } else {
                // Stray quote; emit as punctuation so lexing stays total.
                self.pos += 1;
                self.push(TokKind::Op, "'".into(), start, start_line);
            }
            return;
        }
        self.pos += 1; // opening quote
        loop {
            match self.peek(0) {
                None => break,
                Some(b'\\') => {
                    self.pos += 1;
                    if self.pos < self.bytes.len() {
                        self.bump();
                    }
                }
                Some(b'\'') => {
                    self.pos += 1;
                    break;
                }
                _ => self.bump(),
            }
        }
        let text = self.src[start..self.pos].to_string();
        self.push(TokKind::Char, text, start, start_line);
    }

    fn number(&mut self) {
        let start = self.pos;
        let start_line = self.line;
        let mut is_float = false;
        // Integer part (any radix prefix just rides along).
        while self
            .peek(0)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            // `1e3` / `2E-5` exponents: consume a sign right after e/E,
            // but only for decimal-looking literals (hex `0xE` has no
            // exponent and `_` keeps hex digits distinct).
            let c = self.bytes[self.pos];
            self.pos += 1;
            if (c == b'e' || c == b'E')
                && !self.src[start..].starts_with("0x")
                && self.peek(0).is_some_and(|s| s == b'+' || s == b'-')
            {
                is_float = true;
                self.pos += 1;
            }
        }
        // A fractional part: `.` followed by a digit (so `0..n` ranges
        // and `1.method()` calls are not swallowed).
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            {
                let c = self.bytes[self.pos];
                self.pos += 1;
                if (c == b'e' || c == b'E') && self.peek(0).is_some_and(|s| s == b'+' || s == b'-')
                {
                    self.pos += 1;
                }
            }
        }
        let text = self.src[start..self.pos].to_string();
        if !is_float {
            // `1e3` without sign or dot is still a float, but suffixes
            // carrying an `e` (`10usize`, `2f32`) must not fool us:
            // strip a known suffix before looking for an exponent.
            let stem = int_suffix(&text)
                .map(|s| &text[..text.len() - s.len()])
                .unwrap_or(&text);
            is_float = text.ends_with("f32")
                || text.ends_with("f64")
                || (!text.starts_with("0x")
                    && !text.starts_with("0b")
                    && !text.starts_with("0o")
                    && stem.contains(['e', 'E']));
        }
        let kind = if is_float {
            TokKind::Float
        } else {
            TokKind::Int
        };
        self.push(kind, text, start, start_line);
    }

    fn ident(&mut self) {
        let start = self.pos;
        let start_line = self.line;
        // Raw-identifier prefix.
        if self.bytes[self.pos] == b'r' && self.peek(1) == Some(b'#') {
            self.pos += 2;
        }
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80)
        {
            self.bump();
        }
        let text = self.src[start..self.pos].to_string();
        self.push(TokKind::Ident, text, start, start_line);
    }

    fn operator(&mut self) {
        let start = self.pos;
        let start_line = self.line;
        for op in MULTI_OPS {
            if self.src[self.pos..].starts_with(op) {
                self.pos += op.len();
                self.push(TokKind::Op, (*op).to_string(), start, start_line);
                return;
            }
        }
        let c = self.src[self.pos..].chars().next().unwrap_or('\u{fffd}');
        self.bump();
        self.push(TokKind::Op, c.to_string(), start, start_line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_ops_and_numbers() {
        let toks = kinds("fn add(a: u8) -> u8 { a << 2 }");
        assert!(toks.contains(&(TokKind::Ident, "fn".into())));
        assert!(toks.contains(&(TokKind::Op, "->".into())));
        assert!(toks.contains(&(TokKind::Op, "<<".into())));
        assert!(toks.contains(&(TokKind::Int, "2".into())));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> &'static str { 'outer: loop { break 'outer; } }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 5, "{toks:?}");
        assert!(!toks.iter().any(|(k, _)| *k == TokKind::Char));
    }

    #[test]
    fn char_literals_incl_escaped_quote() {
        let toks = kinds(r"let a = '\''; let b = 'x'; let c = '\u{1F600}'; let d = b'\n';");
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(chars.len(), 4, "{toks:?}");
        assert!(!toks.iter().any(|(k, _)| *k == TokKind::Lifetime));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r####"let s = r##"contains "# and .unwrap()"##; let t = 1;"####;
        let toks = lex(src);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, r##"contains "# and .unwrap()"##);
        assert!(toks.iter().any(|t| t.is_ident("t")), "lexing continues");
    }

    #[test]
    fn byte_strings_and_raw_idents() {
        let toks = kinds("let a = b\"bytes\"; let b = br#\"raw\"#; let r#match = 1;");
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert_eq!(strs[0].1, "bytes");
        assert_eq!(strs[1].1, "raw");
        assert!(toks.contains(&(TokKind::Ident, "r#match".into())));
    }

    #[test]
    fn nested_block_comments_and_docs() {
        let toks = lex("/* a /* b */ c */ x\n/// doc\n//! inner\n// plain\ncode");
        assert!(matches!(toks[0].kind, TokKind::BlockComment { doc: false }));
        assert!(toks[0].text.contains("a /* b */ c"));
        assert!(matches!(toks[2].kind, TokKind::LineComment { doc: true }));
        assert!(matches!(toks[3].kind, TokKind::LineComment { doc: true }));
        assert!(matches!(toks[4].kind, TokKind::LineComment { doc: false }));
        assert_eq!(toks[4].text, " plain");
    }

    #[test]
    fn lines_are_tracked_across_multiline_tokens() {
        let toks = lex("a\n\"two\nline\"\nb /* c\nd */ e");
        let a = toks.iter().find(|t| t.is_ident("a")).unwrap();
        let s = toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        let e = toks.iter().find(|t| t.is_ident("e")).unwrap();
        assert_eq!((a.line, s.line, s.end_line), (1, 2, 3));
        assert_eq!((b.line, e.line), (4, 5));
    }

    #[test]
    fn floats_vs_ranges_vs_method_calls() {
        let toks = kinds("let a = 1.5; for i in 0..n { } let b = 2e3; let c = 1.0f64;");
        let floats: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Float).collect();
        assert_eq!(floats.len(), 3, "{toks:?}");
        assert!(toks.contains(&(TokKind::Op, "..".into())));
        assert!(toks.contains(&(TokKind::Int, "0".into())));
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        let toks = lex("let s = \"unterminated");
        assert_eq!(toks.last().unwrap().kind, TokKind::Str);
        let toks = lex("let c = '");
        assert!(!toks.is_empty());
        let toks = lex("/* never closed");
        assert!(matches!(toks[0].kind, TokKind::BlockComment { .. }));
    }
}
