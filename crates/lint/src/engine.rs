//! The lint engine: file discovery, rule scoping, pragma application,
//! and pragma accountability (P000 / P001).
//!
//! Pragmas are part of the contract, not an escape hatch: a malformed
//! or reason-less pragma is itself a finding (`P000` pragma-syntax),
//! and a pragma that suppresses nothing is dead weight (`P001`
//! unused-pragma). This is what makes "every surviving allow pragma
//! carries a reason" machine-checked rather than reviewed.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::report::{Diagnostic, Report, Severity};
use crate::rules::{registry, semantic_registry, Workspace};
use crate::scan::{scan, ScannedFile};
use crate::symbols::SymbolTable;

/// Severity overrides from `--deny <rule>` / `--warn <rule>` flags,
/// applied in order; `all` matches every rule. Default is `Deny`.
#[derive(Clone, Debug, Default)]
pub struct SeverityMap {
    overrides: Vec<(String, Severity)>,
}

impl SeverityMap {
    /// Appends an override; later entries win.
    pub fn push(&mut self, rule: &str, severity: Severity) {
        self.overrides.push((rule.to_string(), severity));
    }

    /// The effective severity for `rule`.
    pub fn severity_of(&self, rule: &str) -> Severity {
        self.overrides
            .iter()
            .rev()
            .find(|(r, _)| r == "all" || r == rule)
            .map(|&(_, s)| s)
            .unwrap_or(Severity::Deny)
    }
}

/// Errors the engine itself can hit (not findings — these are usage /
/// environment problems and exit 2).
#[derive(Debug)]
pub enum EngineError {
    /// `lint.toml` was unreadable or failed to parse.
    Config(String),
    /// A source path could not be read or walked.
    Io(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Config(e) => write!(f, "config error: {e}"),
            EngineError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Lints the workspace rooted at `root`: every `.rs` file under `src/`
/// and `crates/*/src/`, scoped and configured by `cfg`.
pub fn lint_workspace(
    root: &Path,
    cfg: &Config,
    severities: &SeverityMap,
) -> Result<Report, EngineError> {
    let files = discover(root)?;
    lint_files(root, &files, cfg, severities)
}

/// Lints an explicit file list. Paths are made workspace-relative
/// against `root` for scope matching and diagnostics.
///
/// Runs in two layers: the per-file lexical rules over each scanned
/// file, then the semantic rules (`L007`, `R001`) over the symbol
/// table and call graph built from *all* the files together. Pragma
/// application and accountability happen last, per file, so an
/// `allow(R001, …)` next to a reachable panic site both suppresses the
/// finding and is itself checked for staleness (`P001`).
pub fn lint_files(
    root: &Path,
    files: &[PathBuf],
    cfg: &Config,
    severities: &SeverityMap,
) -> Result<Report, EngineError> {
    let mut scanned: Vec<ScannedFile> = Vec::with_capacity(files.len());
    for path in files {
        let text = fs::read_to_string(path)
            .map_err(|e| EngineError::Io(format!("{}: {e}", path.display())))?;
        let rel = relative_slash(root, path);
        scanned.push(scan(path.clone(), rel, &text));
    }

    // Layer 1: per-file lexical rules.
    let rules = registry();
    let mut all: Vec<Diagnostic> = Vec::new();
    for file in &scanned {
        for rule in &rules {
            if !cfg.rule_applies(rule.id(), &file.rel) {
                continue;
            }
            rule.check(file, cfg, &mut all);
        }
    }

    // Layer 2: workspace-level semantic rules over the symbol table
    // and call graph.
    let symbols = SymbolTable::build(&scanned);
    let calls = CallGraph::build(&symbols, &scanned);
    let ws = Workspace {
        files: &scanned,
        symbols: &symbols,
        calls: &calls,
    };
    for rule in semantic_registry() {
        // R002 runs below through `dataflow::analyze` directly so the
        // proof sets are available for the L003/L006 discharge pass;
        // R003/R004 share one `locks::analyze` pass and R005/R006 one
        // `allocs::analyze` pass, also below.
        if matches!(rule.id(), "R002" | "R003" | "R004" | "R005" | "R006") {
            continue;
        }
        let mut out = Vec::new();
        rule.check(&ws, cfg, &mut out);
        out.retain(|d| cfg.rule_applies(rule.id(), &d.rel));
        all.append(&mut out);
    }

    // Layer 2b: the abstract-interpretation pass (rule R002). Its
    // findings join the normal pragma flow; its proof sets discharge
    // syntactic L003/L006 findings after pragmas are applied.
    let flow = crate::dataflow::analyze(&ws, cfg);
    all.extend(flow.findings.iter().cloned());

    // Layer 2c: the concurrency pass — one shared analysis feeding
    // both R003 (lock-order acyclicity) and R004 (blocking-under-lock)
    // so the guard scopes and call-graph lifting are computed once.
    let conc = crate::locks::analyze(&ws, cfg);
    all.extend(
        conc.cycle_findings
            .into_iter()
            .filter(|d| cfg.rule_applies("R003", &d.rel)),
    );
    all.extend(
        conc.blocking_findings
            .into_iter()
            .filter(|d| cfg.rule_applies("R004", &d.rel)),
    );

    // Layer 2d: the allocation-effect pass — one shared analysis
    // feeding both R005 (alloc-in-hot-loop) and R006
    // (capacity-discipline). Both rules are additionally gated by the
    // `[hot] paths` scope: the obligation is "the hot kernels stay
    // allocation-free per item", not "nothing anywhere allocates".
    let heap = crate::allocs::analyze(&ws, cfg);
    all.extend(heap.hot_findings.into_iter().filter(|d| {
        crate::allocs::hot_scope_applies(cfg, &d.rel) && cfg.rule_applies("R005", &d.rel)
    }));
    all.extend(heap.capacity_findings.into_iter().filter(|d| {
        crate::allocs::hot_scope_applies(cfg, &d.rel) && cfg.rule_applies("R006", &d.rel)
    }));

    // Layer 3: pragma application and severity mapping, per file.
    let mut by_rel: BTreeMap<&str, Vec<Diagnostic>> = BTreeMap::new();
    for d in all {
        // Keys borrow from `scanned`; a diagnostic always anchors to a
        // scanned file, but route any stranger to the report unchanged.
        match scanned.iter().find(|f| f.rel == d.rel) {
            Some(f) => by_rel.entry(f.rel.as_str()).or_default().push(d),
            None => by_rel.entry("").or_default().push(d),
        }
    }
    let mut report = Report::default();
    for file in &scanned {
        let mut file_diags = by_rel.remove(file.rel.as_str()).unwrap_or_default();
        apply_pragmas(file, &mut file_diags);
        // Dataflow discharge runs *after* pragma application so a
        // pragma that suppresses a now-proven site still counts as
        // used (deleting it is a follow-up, not a new P001 failure).
        for d in &mut file_diags {
            if !d.suppressed && flow.discharges(d) {
                d.discharged_by = Some("R002".to_string());
            }
        }
        for d in &mut file_diags {
            d.severity = severities.severity_of(&d.rule);
        }
        report.diagnostics.append(&mut file_diags);
        report.files_scanned += 1;
    }
    for (_, mut rest) in by_rel {
        for d in &mut rest {
            d.severity = severities.severity_of(&d.rule);
        }
        report.diagnostics.append(&mut rest);
    }
    Ok(report)
}

/// Reads and parses `<root>/lint.toml`; absent file means defaults
/// (every rule applies everywhere).
pub fn load_config(root: &Path) -> Result<Config, EngineError> {
    let path = root.join("lint.toml");
    if !path.exists() {
        return Ok(Config::default());
    }
    let text = fs::read_to_string(&path)
        .map_err(|e| EngineError::Config(format!("{}: {e}", path.display())))?;
    Config::parse(&text).map_err(EngineError::Config)
}

/// Walks up from `start` looking for `lint.toml` next to a `Cargo.toml`
/// to find the workspace root; falls back to `start` itself.
pub fn find_root(start: &Path) -> PathBuf {
    let mut cur = start.to_path_buf();
    loop {
        if cur.join("lint.toml").exists()
            || (cur.join("Cargo.toml").exists() && cur.join("crates").is_dir())
        {
            return cur;
        }
        match cur.parent() {
            Some(p) => cur = p.to_path_buf(),
            None => return start.to_path_buf(),
        }
    }
}

/// All `.rs` files under `<root>/src` and `<root>/crates/*/src`, sorted
/// for deterministic reports.
pub fn discover(root: &Path) -> Result<Vec<PathBuf>, EngineError> {
    let mut out = Vec::new();
    let src = root.join("src");
    if src.is_dir() {
        walk_rs(&src, &mut out)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates)
            .map_err(|e| EngineError::Io(format!("{}: {e}", crates.display())))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let src = dir.join("src");
            if src.is_dir() {
                walk_rs(&src, &mut out)?;
            }
        }
    }
    out.sort();
    Ok(out)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), EngineError> {
    let entries =
        fs::read_dir(dir).map_err(|e| EngineError::Io(format!("{}: {e}", dir.display())))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            walk_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// `path` relative to `root`, with forward slashes.
fn relative_slash(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

/// Applies the file's pragmas to its diagnostics, then appends the
/// pragma-accountability findings:
///
/// * `P000` pragma-syntax — malformed pragma or missing reason;
/// * `P001` unused-pragma — a valid pragma that suppressed nothing.
fn apply_pragmas(file: &ScannedFile, diags: &mut Vec<Diagnostic>) {
    let mut used = vec![false; file.pragmas.len()];
    for d in diags.iter_mut() {
        for (i, p) in file.pragmas.iter().enumerate() {
            if p.error.is_some() || p.rule != d.rule {
                continue;
            }
            if p.target_line.is_none() || p.target_line == Some(d.line) {
                d.suppressed = true;
                used[i] = true;
            }
        }
    }
    for (i, p) in file.pragmas.iter().enumerate() {
        if let Some(err) = &p.error {
            diags.push(pragma_diag(
                file,
                "P000",
                "pragma-syntax",
                p.decl_line,
                err.clone(),
            ));
        } else if !used[i] {
            diags.push(pragma_diag(
                file,
                "P001",
                "unused-pragma",
                p.decl_line,
                format!(
                    "allow({}) suppresses nothing — remove it or move it next to the violation",
                    p.rule
                ),
            ));
        }
    }
}

fn pragma_diag(
    file: &ScannedFile,
    rule: &str,
    name: &'static str,
    line: usize,
    message: String,
) -> Diagnostic {
    let snippet = file
        .lines
        .get(line.saturating_sub(1))
        .map(|l| l.code.trim().to_string())
        .unwrap_or_default();
    Diagnostic {
        rule: rule.to_string(),
        name,
        rel: file.rel.clone(),
        line,
        message,
        snippet,
        chain: None,
        severity: Severity::Deny,
        suppressed: false,
        discharged_by: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_map_resolves_in_order() {
        let mut m = SeverityMap::default();
        assert_eq!(m.severity_of("L001"), Severity::Deny, "default is deny");
        m.push("all", Severity::Warn);
        assert_eq!(m.severity_of("L001"), Severity::Warn);
        m.push("L001", Severity::Deny);
        assert_eq!(m.severity_of("L001"), Severity::Deny, "later exact wins");
        assert_eq!(m.severity_of("L002"), Severity::Warn);
    }

    #[test]
    fn pragmas_suppress_and_account() {
        let text = "fn f() {\n    let a = x.unwrap(); // lint: allow(L001, reason = \"seeded\")\n    let b = y.unwrap();\n}\n// lint: allow(L003, reason = \"nothing to suppress\")\nfn g() {}\n";
        let file = scan(PathBuf::from("t.rs"), "t.rs".into(), text);
        let mut diags = Vec::new();
        for rule in registry() {
            rule.check(&file, &Config::default(), &mut diags);
        }
        apply_pragmas(&file, &mut diags);
        let suppressed: Vec<_> = diags.iter().filter(|d| d.suppressed).collect();
        assert_eq!(suppressed.len(), 1);
        assert_eq!(suppressed[0].line, 2);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "L001" && !d.suppressed && d.line == 3),
            "unpragma'd violation stays"
        );
        assert!(
            diags.iter().any(|d| d.rule == "P001"),
            "dead pragma is reported: {diags:?}"
        );
    }

    #[test]
    fn malformed_pragmas_are_p000() {
        let text = "// lint: allow(L001)\nfn f() { x.unwrap(); }\n";
        let file = scan(PathBuf::from("t.rs"), "t.rs".into(), text);
        let mut diags = Vec::new();
        for rule in registry() {
            rule.check(&file, &Config::default(), &mut diags);
        }
        apply_pragmas(&file, &mut diags);
        assert!(diags.iter().any(|d| d.rule == "P000"));
        assert!(
            diags.iter().any(|d| d.rule == "L001" && !d.suppressed),
            "a reason-less pragma must not suppress"
        );
    }

    #[test]
    fn rule_scoping_follows_config() {
        let cfg = Config::parse("[rules.L003]\npaths = [\"crates/addr/src\"]\n").expect("parses");
        assert!(cfg.rule_applies("L003", "crates/addr/src/addr.rs"));
        assert!(!cfg.rule_applies("L003", "crates/census/src/tables.rs"));
        assert!(
            cfg.rule_applies("L001", "anything.rs"),
            "unscoped rules apply everywhere"
        );
    }
}
