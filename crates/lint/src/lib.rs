//! v6census-lint: in-repo static analysis for the v6census workspace.
//!
//! The workspace ships contracts that `rustc` and clippy cannot see:
//! panic-free library paths, byte-for-byte deterministic product
//! output, lossless bit/nybble casts, a typed error taxonomy, and a
//! documented process exit-code mapping. This crate enforces them as
//! five lexical rules (`L001`–`L005`) over comment- and string-blanked
//! source, with per-line `// lint: allow(<rule>, reason = "...")`
//! suppression pragmas that are themselves machine-checked (`P000`,
//! `P001`).
//!
//! Run it as `cargo run -p lint -- --workspace` (add `--deny all` in
//! CI). Rule scopes live in the checked-in `lint.toml`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod config;
pub mod engine;
pub mod lexer;
pub mod reach;
pub mod report;
pub mod rules;
pub mod scan;
pub mod symbols;
