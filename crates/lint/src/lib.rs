//! v6census-lint: in-repo static analysis for the v6census workspace.
//!
//! The workspace ships contracts that `rustc` and clippy cannot see:
//! panic-free library paths, byte-for-byte deterministic product
//! output, lossless bit/nybble casts, a typed error taxonomy, a
//! documented process exit-code mapping, and a crash-consistent
//! durability path. This crate enforces them as lexical rules
//! (`L001`–`L008`) over comment- and string-blanked source, four
//! interprocedural proofs — `R001` panic-reachability over the
//! [`callgraph`], the `R002` bit-domain dataflow ([`dataflow`], an
//! interval + unit abstract interpretation whose proofs discharge
//! `L003`/`L006`'s syntactic findings), `R003` lock-order acyclicity
//! and `R004` blocking-under-lock ([`locks`] + [`effects`], guard
//! scopes and blocking effects lifted over the call graph), `R005`
//! alloc-in-hot-loop and `R006` capacity-discipline ([`allocs`], a
//! three-point allocation-effect lattice lifted over the call graph
//! and checked against token-precise loop scopes) — and
//! per-line `// lint: allow(<rule>, reason = "...")` suppression
//! pragmas that are themselves machine-checked (`P000`, `P001`).
//!
//! Run it as `cargo run -p lint -- --workspace` (add `--deny all` in
//! CI). Rule scopes live in the checked-in `lint.toml`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocs;
pub mod callgraph;
pub mod config;
pub mod dataflow;
pub mod effects;
pub mod engine;
pub mod intervals;
pub mod lexer;
pub mod locks;
pub mod reach;
pub mod report;
pub mod rules;
pub mod scan;
pub mod symbols;
pub mod units;
