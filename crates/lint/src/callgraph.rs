//! Intra-workspace call graph over the symbol table.
//!
//! For every function body in [`crate::symbols::SymbolTable`] this
//! walks the token stream and records call sites — `free_fn(…)`,
//! `path::to::fn(…)`, `Type::method(…)`, `recv.method(…)`, including
//! turbofish forms — and resolves each one to the workspace functions
//! it may reach. Resolution is deliberately a *conservative
//! over-approximation*: a method call by name binds to every workspace
//! method with that name unless the receiver is `self` (which narrows
//! to the enclosing `impl` type), and unresolvable calls (std, core,
//! foreign crates) simply contribute no edges. Over-approximation is
//! the safe direction for panic-reachability: we may report a chain
//! that the borrow checker would rule out, but we never miss one.

use crate::lexer::{TokKind, Token};
use crate::scan::ScannedFile;
use crate::symbols::{normalize_crate_seg, FnSym, SymbolTable};

/// One syntactic call site inside a function body.
#[derive(Clone, Debug)]
pub struct Call {
    /// Workspace functions this site may invoke (empty for foreign
    /// calls).
    pub callees: Vec<usize>,
    /// 1-based source line of the callee name.
    pub line: usize,
    /// Rendered callee expression for diagnostics, e.g.
    /// `trie::densify` or `.node_at`.
    pub expr: String,
    /// Index of the call's opening `(` in the owning file's full token
    /// stream, so statement-level rules (L007) can walk the
    /// surrounding tokens instead of a single source line.
    pub paren: usize,
}

/// Call sites grouped by calling function, same indexing as
/// `SymbolTable::fns`.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `calls[fn_id]` lists that function's call sites in source order.
    pub calls: Vec<Vec<Call>>,
}

/// Keywords that may immediately precede `(` without being a call.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "in", "loop", "match", "return", "break", "continue", "fn",
    "let", "mut", "ref", "move", "as", "where", "impl", "dyn", "use", "pub", "mod", "struct",
    "enum", "trait", "type", "const", "static", "unsafe", "async", "await", "box", "yield",
];

impl CallGraph {
    /// Builds the graph; `files` must be the same slice the table was
    /// built from.
    pub fn build(table: &SymbolTable, files: &[ScannedFile]) -> CallGraph {
        let mut calls = vec![Vec::new(); table.fns.len()];
        for (id, f) in table.fns.iter().enumerate() {
            let Some((start, end)) = f.body else { continue };
            let Some(file) = files.get(f.file) else {
                continue;
            };
            let body: Vec<(usize, &Token)> = file
                .tokens
                .iter()
                .enumerate()
                .take(end.min(file.tokens.len()))
                .skip(start)
                .filter(|(_, t)| {
                    !matches!(
                        t.kind,
                        TokKind::LineComment { .. } | TokKind::BlockComment { .. }
                    )
                })
                .collect();
            if let Some(slot) = calls.get_mut(id) {
                *slot = collect_calls(table, f, &body);
            }
        }
        CallGraph { calls }
    }

    /// All `(callee, line, expr)` edges out of `caller`.
    pub fn edges(&self, caller: usize) -> impl Iterator<Item = (usize, usize, &str)> + '_ {
        self.calls
            .get(caller)
            .into_iter()
            .flatten()
            .flat_map(|c| c.callees.iter().map(move |&k| (k, c.line, c.expr.as_str())))
    }
}

/// Scans one body's comment-free tokens (paired with their index in
/// the file's full token stream) for call sites.
fn collect_calls(table: &SymbolTable, caller: &FnSym, toks: &[(usize, &Token)]) -> Vec<Call> {
    let mut out = Vec::new();
    for (j, (orig, t)) in toks.iter().enumerate() {
        if !t.is_op("(") || j == 0 {
            continue;
        }
        // Walk back over an optional `::<…>` turbofish.
        let mut k = j - 1;
        if toks
            .get(k)
            .is_some_and(|(_, t)| matches!(t.text.as_str(), ">" | ">>"))
        {
            let Some(open) = skip_angles_back(toks, k) else {
                continue;
            };
            if open < 2 || !toks.get(open - 1).is_some_and(|(_, t)| t.is_op("::")) {
                continue;
            }
            k = open - 2;
        }
        let name_tok = match toks.get(k) {
            Some((_, t)) if t.kind == TokKind::Ident => *t,
            _ => continue,
        };
        if NON_CALL_KEYWORDS.contains(&name_tok.text.as_str()) {
            continue;
        }
        // Collect `seg::seg::name` backwards.
        let mut path = vec![name_tok.text.clone()];
        let mut p = k;
        while p >= 2
            && toks.get(p - 1).is_some_and(|(_, t)| t.is_op("::"))
            && toks
                .get(p - 2)
                .is_some_and(|(_, t)| t.kind == TokKind::Ident)
        {
            p -= 2;
            if let Some((_, seg)) = toks.get(p) {
                path.insert(0, seg.text.clone());
            }
        }
        let before = p.checked_sub(1).and_then(|q| toks.get(q));
        if before.is_some_and(|(_, t)| t.is_ident("fn")) {
            continue; // nested `fn` declaration, not a call
        }
        let is_method = path.len() == 1 && before.is_some_and(|(_, t)| t.is_op("."));
        let receiver_is_self =
            is_method && p >= 2 && toks.get(p - 2).is_some_and(|(_, t)| t.is_ident("self"));
        let callees = resolve(table, caller, &path, is_method, receiver_is_self);
        let expr = if is_method {
            format!(".{}", name_tok.text)
        } else {
            path.join("::")
        };
        out.push(Call {
            callees,
            line: name_tok.line,
            expr,
            paren: *orig,
        });
    }
    out
}

/// From a closing `>`/`>>` at `close`, steps back to the index of the
/// matching opening `<`; `None` when unbalanced.
fn skip_angles_back(toks: &[(usize, &Token)], close: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut i = close;
    loop {
        let (_, t) = toks.get(i)?;
        match t.text.as_str() {
            ">" => depth += 1,
            ">>" => depth += 2,
            "<" => depth -= 1,
            "<<" => depth -= 2,
            _ => {}
        }
        if depth <= 0 {
            return Some(i);
        }
        i = i.checked_sub(1)?;
    }
}

/// Resolves a call path to candidate workspace functions.
fn resolve(
    table: &SymbolTable,
    caller: &FnSym,
    path: &[String],
    is_method: bool,
    receiver_is_self: bool,
) -> Vec<usize> {
    let Some(name) = path.last() else {
        return Vec::new();
    };
    if is_method {
        // `.name(…)`: narrow to the enclosing impl type when the
        // receiver is literally `self`, otherwise every method with
        // this name may be the target.
        if receiver_is_self {
            if let Some(ty) = &caller.self_ty {
                if let Some(ids) = table.methods_by_ty.get(&(ty.clone(), name.clone())) {
                    return ids.clone();
                }
            }
        }
        return table.methods_by_name.get(name).cloned().unwrap_or_default();
    }

    // Qualified or bare path call: build candidate absolute paths in
    // priority order, then take the first that resolves.
    let scope = table.scopes.get(caller.file);
    let mut candidates: Vec<Vec<String>> = Vec::new();
    if path.len() == 1 {
        // A bare ident may still be a `use`-imported name.
        match scope.and_then(|s| s.uses.get(name)) {
            Some(target) => candidates.push(target.clone()),
            None => return resolve_bare(table, caller, name),
        }
    } else {
        let Some(first) = path.first() else {
            return Vec::new();
        };
        let rest = || path.iter().skip(1).cloned();
        match first.as_str() {
            "Self" => {
                if let (Some(ty), 2) = (&caller.self_ty, path.len()) {
                    if let Some(ids) = table.methods_by_ty.get(&(ty.clone(), name.clone())) {
                        return ids.clone();
                    }
                }
                return Vec::new();
            }
            "self" => {
                let mut abs = vec![caller.krate.clone()];
                abs.extend(caller.module.iter().cloned());
                abs.extend(rest());
                candidates.push(abs);
            }
            "super" => {
                let mut abs = vec![caller.krate.clone()];
                let parent = caller.module.len().saturating_sub(1);
                abs.extend(caller.module.iter().take(parent).cloned());
                abs.extend(rest());
                candidates.push(abs);
            }
            _ => {
                if let Some(target) = scope.and_then(|s| s.uses.get(first)) {
                    // `use a::b; b::c(…)` — alias names a module/type.
                    let mut abs = target.clone();
                    abs.extend(rest());
                    candidates.push(abs);
                } else {
                    // First segment as a crate name, then the whole
                    // path relative to the caller's module, then
                    // relative to the crate root.
                    let mut abs = vec![normalize_crate_seg(first, &caller.krate)];
                    abs.extend(rest());
                    candidates.push(abs);
                    let mut rel = vec![caller.krate.clone()];
                    rel.extend(caller.module.iter().cloned());
                    rel.extend(path.iter().cloned());
                    candidates.push(rel);
                    let mut root = vec![caller.krate.clone()];
                    root.extend(path.iter().cloned());
                    candidates.push(root);
                }
            }
        }
    }

    for full in &candidates {
        let ids = resolve_absolute(table, full, name);
        if !ids.is_empty() {
            return ids;
        }
    }
    // Last resort: free fns with this name in the crate named by the
    // first candidate (handles re-exports that shift the module path).
    let Some(krate) = candidates.first().and_then(|c| c.first()) else {
        return Vec::new();
    };
    table
        .free_by_name
        .get(name)
        .into_iter()
        .flatten()
        .copied()
        .filter(|&id| table.fns.get(id).is_some_and(|f| &f.krate == krate))
        .collect()
}

/// Resolves one absolute path (`crate::…::name`) to functions: a
/// method when the penultimate segment is type-cased, else an exact
/// free-fn qname match.
fn resolve_absolute(table: &SymbolTable, full: &[String], name: &String) -> Vec<usize> {
    if full.len() >= 2 {
        if let Some(ty) = full.get(full.len().saturating_sub(2)) {
            if ty.chars().next().is_some_and(char::is_uppercase) {
                if let Some(ids) = table.methods_by_ty.get(&(ty.clone(), name.clone())) {
                    return ids.clone();
                }
            }
        }
    }
    let qname = full.join("::");
    table
        .free_by_name
        .get(name)
        .into_iter()
        .flatten()
        .copied()
        .filter(|&id| table.fns.get(id).is_some_and(|f| f.qname == qname))
        .collect()
}

/// Resolves a bare-ident call: a `use` alias was already expanded by
/// the caller, so try same module, then same crate. Type-cased idents
/// (`Some`, `Ok`, tuple structs) are constructors, not calls.
fn resolve_bare(table: &SymbolTable, caller: &FnSym, name: &str) -> Vec<usize> {
    if name.chars().next().is_some_and(char::is_uppercase) {
        return Vec::new();
    }
    let ids: Vec<usize> = table
        .free_by_name
        .get(name)
        .into_iter()
        .flatten()
        .copied()
        .collect();
    let same_module: Vec<usize> = ids
        .iter()
        .copied()
        .filter(|&id| {
            table
                .fns
                .get(id)
                .is_some_and(|f| f.krate == caller.krate && f.module == caller.module)
        })
        .collect();
    if !same_module.is_empty() {
        return same_module;
    }
    ids.into_iter()
        .filter(|&id| table.fns.get(id).is_some_and(|f| f.krate == caller.krate))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;
    use std::path::PathBuf;

    fn graph_of(files: &[(&str, &str)]) -> (SymbolTable, CallGraph) {
        let scanned: Vec<ScannedFile> = files
            .iter()
            .map(|(rel, src)| scan(PathBuf::from(rel), (*rel).into(), src))
            .collect();
        let table = SymbolTable::build(&scanned);
        let graph = CallGraph::build(&table, &scanned);
        (table, graph)
    }

    fn callee_names(table: &SymbolTable, graph: &CallGraph, caller: &str) -> Vec<String> {
        let ids = table.find_by_suffix(caller);
        let id = *ids.first().expect("caller exists");
        graph
            .edges(id)
            .map(|(k, _, _)| table.fns[k].qname.clone())
            .collect()
    }

    #[test]
    fn same_module_and_qualified_calls() {
        let src = "\
fn helper() {}
mod sub { pub fn inner() {} }
fn driver() {
    helper();
    sub::inner();
    self::helper();
    std::process::exit(1);
}
";
        let (t, g) = graph_of(&[("crates/x/src/lib.rs", src)]);
        let names = callee_names(&t, &g, "x::driver");
        assert!(names.contains(&"x::helper".into()), "{names:?}");
        assert!(names.contains(&"x::sub::inner".into()), "{names:?}");
        assert_eq!(names.iter().filter(|n| *n == "x::helper").count(), 2);
        assert_eq!(names.len(), 3, "std call contributes no edge: {names:?}");
    }

    #[test]
    fn use_alias_resolves_cross_crate() {
        let a = "pub fn run_census() { }\n";
        let b = "\
use v6census_census::supervisor::run_census;
fn main() { run_census(); }
";
        let (t, g) = graph_of(&[
            ("crates/census/src/supervisor.rs", a),
            ("crates/cli/src/main.rs", b),
        ]);
        let names = callee_names(&t, &g, "cli::main");
        assert_eq!(names, vec!["census::supervisor::run_census".to_string()]);
    }

    #[test]
    fn self_method_calls_narrow_to_impl_type() {
        let src = "\
struct A;
struct B;
impl A {
    fn step(&self) {}
    fn go(&self) { self.step(); }
}
impl B {
    fn step(&self) {}
}
fn free(a: &A, b: &B) { a.step(); }
";
        let (t, g) = graph_of(&[("crates/x/src/lib.rs", src)]);
        let narrowed = callee_names(&t, &g, "A::go");
        assert_eq!(narrowed, vec!["x::A::step".to_string()], "self narrows");
        let broad = callee_names(&t, &g, "x::free");
        assert_eq!(
            broad.len(),
            2,
            "unknown receiver over-approximates: {broad:?}"
        );
    }

    #[test]
    fn type_path_and_turbofish_calls() {
        let src = "\
struct Node;
impl Node {
    pub fn new() -> Node { Node }
}
fn parse<T>() -> T { todo!() }
fn driver() {
    let n = Node::new();
    let v = parse::<u32>();
}
";
        let (t, g) = graph_of(&[("crates/x/src/lib.rs", src)]);
        let names = callee_names(&t, &g, "x::driver");
        assert!(names.contains(&"x::Node::new".into()), "{names:?}");
        assert!(names.contains(&"x::parse".into()), "turbofish: {names:?}");
    }

    #[test]
    fn call_lines_and_exprs_are_recorded() {
        let src = "fn f() {}\nfn g() {\n    f();\n}\n";
        let (t, g) = graph_of(&[("crates/x/src/lib.rs", src)]);
        let id = *t.find_by_suffix("x::g").first().expect("g");
        let calls = &g.calls[id];
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].line, 3);
        assert_eq!(calls[0].expr, "f");
    }

    #[test]
    fn keywords_and_macros_are_not_calls() {
        let src = "\
fn f(x: bool) {
    if (x) { }
    while (x) { }
    println!(\"{}\", 1);
    return ();
}
";
        let (t, g) = graph_of(&[("crates/x/src/lib.rs", src)]);
        let id = *t.find_by_suffix("x::f").first().expect("f");
        assert!(g.calls[id].is_empty(), "{:?}", g.calls[id]);
    }
}
