//! Item-level symbol table over the lexed workspace.
//!
//! This is the first semantic layer: from each file's token stream it
//! extracts the `fn` items (free functions, inherent/trait methods,
//! trait default methods), the `impl`/`trait` blocks that own them, the
//! inline `mod` nesting, and the `use` declarations — enough to give
//! every function a stable qualified name and to resolve
//! workspace-local call paths in [`crate::callgraph`].
//!
//! Naming scheme (crate names are the workspace directory names, so
//! `v6census_census::supervisor::run_census` is
//! `census::supervisor::run_census`):
//!
//! * free function: `crate::module::…::name`
//! * method (inherent, trait impl, or trait default): `crate::Type::name`
//!
//! The parser is a single forward walk with a scope stack keyed to brace
//! depth; it is deliberately total — unparseable constructs degrade to
//! "no symbol recorded", never to a crash, because the lint must never
//! panic on the code it audits (that is rule L001's own contract).

use std::collections::BTreeMap;

use crate::lexer::{TokKind, Token};
use crate::scan::ScannedFile;

/// One function item (free function or method).
#[derive(Clone, Debug)]
pub struct FnSym {
    /// Qualified name: `crate::module::name` or `crate::Type::name`.
    pub qname: String,
    /// Bare function name, the last segment of `qname`.
    pub name: String,
    /// The `impl`/`trait` self type when this is a method.
    pub self_ty: Option<String>,
    /// Workspace crate (directory name under `crates/`).
    pub krate: String,
    /// Module path within the crate (file modules + inline `mod`s).
    pub module: Vec<String>,
    /// Index of the owning file in the scanned-file slice.
    pub file: usize,
    /// 1-based line of the `fn` name.
    pub line: usize,
    /// Token-index range `[start, end)` of the body block, braces
    /// included; `None` for bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// True when declared inside a `#[cfg(test)]`/`#[test]` region.
    pub is_test: bool,
    /// True when the return type mentions `Result`.
    pub returns_result: bool,
    /// True for `pub` items (any visibility scope).
    pub is_pub: bool,
}

/// Per-file resolution context.
#[derive(Clone, Debug, Default)]
pub struct FileScope {
    /// Workspace crate name derived from the path.
    pub krate: String,
    /// Module path derived from the path (inline `mod`s are carried on
    /// each [`FnSym`], not here).
    pub module: Vec<String>,
    /// `use` aliases: imported name → absolute path segments (first
    /// segment is a normalized workspace crate name, or a foreign crate
    /// like `std` left as-is).
    pub uses: BTreeMap<String, Vec<String>>,
}

/// The workspace symbol table.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// One entry per scanned file, same order.
    pub scopes: Vec<FileScope>,
    /// Every function item found.
    pub fns: Vec<FnSym>,
    /// Free functions by bare name.
    pub free_by_name: BTreeMap<String, Vec<usize>>,
    /// Methods by bare name (across all self types).
    pub methods_by_name: BTreeMap<String, Vec<usize>>,
    /// Methods by `(Type, name)`.
    pub methods_by_ty: BTreeMap<(String, String), Vec<usize>>,
}

impl SymbolTable {
    /// Builds the table from every scanned file.
    pub fn build(files: &[ScannedFile]) -> SymbolTable {
        let mut table = SymbolTable::default();
        for (idx, file) in files.iter().enumerate() {
            let scope = parse_file(&mut table, idx, file);
            table.scopes.push(scope);
        }
        for (id, f) in table.fns.iter().enumerate() {
            match &f.self_ty {
                Some(ty) => {
                    table
                        .methods_by_name
                        .entry(f.name.clone())
                        .or_default()
                        .push(id);
                    table
                        .methods_by_ty
                        .entry((ty.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                }
                None => table
                    .free_by_name
                    .entry(f.name.clone())
                    .or_default()
                    .push(id),
            }
        }
        table
    }

    /// Function ids whose qualified name ends with the given
    /// `::`-separated suffix (`"cli::main"` matches `cli::main` but not
    /// `cli::commands::main`'s prefix; `"census"` alone matches any fn
    /// named census).
    pub fn find_by_suffix(&self, suffix: &str) -> Vec<usize> {
        let want: Vec<&str> = suffix.split("::").collect();
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                let have: Vec<&str> = f.qname.split("::").collect();
                have.len() >= want.len() && have[have.len() - want.len()..] == want[..]
            })
            .map(|(id, _)| id)
            .collect()
    }
}

/// Maps a workspace-relative path to (crate, module path).
///
/// `crates/census/src/supervisor.rs` → (`census`, `[supervisor]`);
/// `src/lib.rs` → (`v6census`, `[]`); `crates/bench/src/bin/fig1.rs` →
/// (`bench`, `[bin, fig1]`). Paths outside the known layout fall back to
/// the file stem as a pseudo-crate so single-file fixtures still
/// resolve same-module calls.
pub fn crate_and_module(rel: &str) -> (String, Vec<String>) {
    let parts: Vec<&str> = rel.split('/').collect();
    let (krate, rest): (String, &[&str]) = match parts.as_slice() {
        ["crates", k, "src", rest @ ..] => ((*k).to_string(), rest),
        ["src", rest @ ..] => ("v6census".to_string(), rest),
        _ => {
            let stem = parts
                .last()
                .and_then(|p| p.strip_suffix(".rs"))
                .unwrap_or("file");
            return (stem.to_string(), Vec::new());
        }
    };
    let mut module: Vec<String> = rest
        .iter()
        .map(|p| p.strip_suffix(".rs").unwrap_or(p).to_string())
        .collect();
    // `lib.rs`, `main.rs`, and `mod.rs` are their parent module.
    if matches!(
        module.last().map(String::as_str),
        Some("lib" | "main" | "mod")
    ) {
        module.pop();
    }
    (krate, module)
}

/// Normalizes a path's first segment to a workspace crate name:
/// `v6census_addr` → `addr`, `crate` → the current crate. Foreign
/// crates (`std`, `core`, …) are returned unchanged — note that a bare
/// `core::` path is *std's* core; our core crate is only reachable as
/// `v6census_core`.
pub fn normalize_crate_seg(seg: &str, current_crate: &str) -> String {
    if seg == "crate" {
        return current_crate.to_string();
    }
    match seg.strip_prefix("v6census_") {
        Some("") | None => seg.to_string(),
        Some(rest) => rest.to_string(),
    }
}

/// What the scope stack is tracking at each brace depth.
#[derive(Clone, Debug)]
enum Scope {
    Module(String),
    SelfTy(String),
    Fn { id: usize },
    Block,
}

/// Item keyword seen since the last statement boundary, waiting for its
/// `{`.
#[derive(Clone, Debug)]
enum Pending {
    Module(String),
    SelfTy(String),
    Fn { id: usize },
}

/// Walks one file's tokens, appending function symbols to `table`.
fn parse_file(table: &mut SymbolTable, file_idx: usize, file: &ScannedFile) -> FileScope {
    let (krate, file_module) = crate_and_module(&file.rel);
    let mut scope = FileScope {
        krate: krate.clone(),
        module: file_module.clone(),
        uses: BTreeMap::new(),
    };
    // Comment-free view with original token indices.
    let toks: Vec<(usize, &Token)> = file
        .tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            !matches!(
                t.kind,
                TokKind::LineComment { .. } | TokKind::BlockComment { .. }
            )
        })
        .collect();

    let mut stack: Vec<Scope> = Vec::new();
    let mut pending: Option<Pending> = None;
    // Start of the current item's prefix tokens, for visibility checks.
    let mut item_start = 0usize;

    let mut i = 0usize;
    while i < toks.len() {
        let (orig, t) = toks[i];
        match t.kind {
            TokKind::Ident => match t.text.as_str() {
                "mod" => {
                    if let Some((_, name)) =
                        toks.get(i + 1).filter(|(_, n)| n.kind == TokKind::Ident)
                    {
                        pending = Some(Pending::Module(name.text.clone()));
                        i += 1;
                    }
                }
                // Only an item-position `impl` opens an impl block.
                // With a Pending::Fn (or other item) active, this is
                // `impl Trait` inside a signature (`f: impl Fn(u64)`,
                // `-> impl Iterator`) and must not steal the body.
                "impl" if pending.is_none() => {
                    if let Some(ty) = impl_self_type(&toks, i + 1) {
                        pending = Some(Pending::SelfTy(ty));
                    }
                }
                "trait" => {
                    if let Some((_, name)) =
                        toks.get(i + 1).filter(|(_, n)| n.kind == TokKind::Ident)
                    {
                        pending = Some(Pending::SelfTy(name.text.clone()));
                        i += 1;
                    }
                }
                "use" => {
                    i = parse_use(&mut scope, &toks, i);
                    item_start = i + 1;
                }
                "fn" => {
                    if let Some((_, name)) =
                        toks.get(i + 1).filter(|(_, n)| n.kind == TokKind::Ident)
                    {
                        let id = record_fn(
                            table,
                            file_idx,
                            file,
                            &krate,
                            &file_module,
                            &stack,
                            &toks,
                            i,
                            name,
                            item_start,
                        );
                        if let Some(id) = id {
                            pending = Some(Pending::Fn { id });
                        }
                        i += 1;
                    }
                }
                _ => {}
            },
            TokKind::Op => match t.text.as_str() {
                "{" => {
                    stack.push(match pending.take() {
                        Some(Pending::Module(m)) => Scope::Module(m),
                        Some(Pending::SelfTy(ty)) => Scope::SelfTy(ty),
                        Some(Pending::Fn { id }) => {
                            table.fns[id].body = Some((orig, orig + 1)); // end patched at `}`
                            Scope::Fn { id }
                        }
                        None => Scope::Block,
                    });
                    item_start = i + 1;
                }
                "}" => {
                    if let Some(Scope::Fn { id }) = stack.pop() {
                        if let Some((start, _)) = table.fns[id].body {
                            table.fns[id].body = Some((start, orig + 1));
                        }
                    }
                    pending = None;
                    item_start = i + 1;
                }
                ";" => {
                    pending = None;
                    item_start = i + 1;
                }
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    scope
}

/// Extracts the self type of an `impl` header starting right after the
/// `impl` keyword: skips generics, honours `impl Trait for Type`, and
/// takes the last path segment of the type at angle depth 0.
fn impl_self_type(toks: &[(usize, &Token)], mut i: usize) -> Option<String> {
    // Skip `<...>` generic parameters.
    if toks.get(i).is_some_and(|(_, t)| t.is_op("<")) {
        let mut depth = 0i64;
        while let Some((_, t)) = toks.get(i) {
            match t.text.as_str() {
                "<" | "<<" => depth += angle_arrows(t),
                ">" | ">>" => {
                    depth -= angle_arrows(t);
                    if depth <= 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    // Walk the header up to the body `{` (or a `where` clause),
    // remembering the last ident at angle depth 0 both before and after
    // a top-level `for`.
    let mut depth = 0i64;
    let mut before_for: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while let Some((_, t)) = toks.get(i) {
        match t.kind {
            TokKind::Op => match t.text.as_str() {
                "{" | ";" => break,
                "<" | "<<" => depth += angle_arrows(t),
                ">" | ">>" => depth -= angle_arrows(t),
                _ => {}
            },
            TokKind::Ident if depth == 0 => match t.text.as_str() {
                "for" => saw_for = true,
                "where" => break,
                "dyn" | "mut" | "const" => {}
                name => {
                    let slot = if saw_for {
                        &mut after_for
                    } else {
                        &mut before_for
                    };
                    *slot = Some(name.to_string());
                }
            },
            _ => {}
        }
        i += 1;
    }
    if saw_for {
        after_for
    } else {
        before_for
    }
}

fn angle_arrows(t: &Token) -> i64 {
    if t.text.len() == 2 {
        2
    } else {
        1
    }
}

/// Records one `fn` item. `fn_at` indexes the `fn` keyword in `toks`;
/// `name` is the following ident. Returns the new symbol id, or `None`
/// when the signature runs off the file.
#[allow(clippy::too_many_arguments)]
fn record_fn(
    table: &mut SymbolTable,
    file_idx: usize,
    file: &ScannedFile,
    krate: &str,
    file_module: &[String],
    stack: &[Scope],
    toks: &[(usize, &Token)],
    fn_at: usize,
    name: &Token,
    item_start: usize,
) -> Option<usize> {
    // Visibility: a `pub` among the item-prefix tokens (attributes,
    // qualifiers) since the last statement boundary.
    let is_pub = toks[item_start..fn_at]
        .iter()
        .any(|(_, t)| t.is_ident("pub"));

    // Scan the signature up to the body `{` or declaration `;` to learn
    // the return type. Angle depth guards against `->` inside generic
    // bounds; return types carry no braces, so a `{` at depth 0 is the
    // body.
    let mut i = fn_at + 2;
    let mut angle = 0i64;
    let mut saw_arrow = false;
    let mut returns_result = false;
    while let Some((_, t)) = toks.get(i) {
        match t.kind {
            TokKind::Op => match t.text.as_str() {
                "<" | "<<" => angle += angle_arrows(t),
                ">" | ">>" => angle -= angle_arrows(t),
                "->" => saw_arrow = true,
                "{" if angle <= 0 => break,
                ";" if angle <= 0 => break,
                _ => {}
            },
            TokKind::Ident if saw_arrow && t.text == "Result" => returns_result = true,
            _ => {}
        }
        i += 1;
    }
    toks.get(i)?; // ran off the file: unparseable, record nothing

    // Enclosing inline modules and self type from the scope stack.
    let mut module = file_module.to_vec();
    let mut self_ty = None;
    for s in stack {
        match s {
            Scope::Module(m) => module.push(m.clone()),
            Scope::SelfTy(ty) => self_ty = Some(ty.clone()),
            _ => {}
        }
    }
    let qname = match &self_ty {
        Some(ty) => format!("{krate}::{ty}::{}", name.text),
        None => {
            let mut parts = vec![krate.to_string()];
            parts.extend(module.iter().cloned());
            parts.push(name.text.clone());
            parts.join("::")
        }
    };
    let id = table.fns.len();
    table.fns.push(FnSym {
        qname,
        name: name.text.clone(),
        self_ty,
        krate: krate.to_string(),
        module,
        file: file_idx,
        line: name.line,
        body: None, // filled in when the `{` is reached
        is_test: file.is_test_line(name.line),
        returns_result,
        is_pub,
    });
    Some(id)
}

/// Parses a `use` declaration starting at the `use` keyword; returns
/// the index of its terminating `;` (or the last token). Fills
/// `scope.uses` with alias → absolute path entries. Glob imports are
/// ignored (nothing in the workspace depends on them for fn calls).
fn parse_use(scope: &mut FileScope, toks: &[(usize, &Token)], use_at: usize) -> usize {
    let mut end = use_at + 1;
    while let Some((_, t)) = toks.get(end) {
        if t.is_op(";") {
            break;
        }
        end += 1;
    }
    let krate = scope.krate.clone();
    let module = scope.module.clone();
    collect_use_tree(
        scope,
        &krate,
        &module,
        &toks[use_at + 1..end.min(toks.len())],
        &[],
    );
    end
}

/// Recursively walks a use tree (`a::b::{c, d as e}`) and records leaf
/// aliases against `prefix` + their path.
fn collect_use_tree(
    scope: &mut FileScope,
    krate: &str,
    module: &[String],
    toks: &[(usize, &Token)],
    prefix: &[String],
) {
    let mut path: Vec<String> = prefix.to_vec();
    let mut i = 0usize;
    let mut last_leaf: Option<String> = None;
    while i < toks.len() {
        let (_, t) = toks[i];
        match t.kind {
            TokKind::Ident if t.text == "as" => {
                // `leaf as alias`: the next ident renames the leaf.
                if let (Some(leaf), Some((_, alias))) = (last_leaf.take(), toks.get(i + 1)) {
                    let mut full = path.clone();
                    full.push(leaf);
                    record_use(scope, krate, module, alias.text.clone(), full);
                    i += 1;
                }
            }
            TokKind::Ident => last_leaf = Some(t.text.clone()),
            TokKind::Op => match t.text.as_str() {
                "::" => {
                    if let Some(seg) = last_leaf.take() {
                        path.push(seg);
                    }
                }
                "{" => {
                    // Group: split the balanced interior on top commas.
                    let close = matching_brace(toks, i);
                    let inner = &toks[i + 1..close];
                    for part in split_top_commas(inner) {
                        collect_use_tree(scope, krate, module, part, &path);
                    }
                    i = close;
                    last_leaf = None;
                }
                "*" => last_leaf = None, // glob: ignored
                "," => {
                    if let Some(leaf) = last_leaf.take() {
                        let mut full = path.clone();
                        full.push(leaf.clone());
                        record_use(scope, krate, module, leaf, full);
                    }
                    path = prefix.to_vec();
                }
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    if let Some(leaf) = last_leaf {
        let mut full = path;
        full.push(leaf.clone());
        record_use(scope, krate, module, leaf, full);
    }
}

/// Records one alias, absolutizing `crate`/`self`/`super` and workspace
/// lib names.
fn record_use(
    scope: &mut FileScope,
    krate: &str,
    module: &[String],
    alias: String,
    mut path: Vec<String>,
) {
    let Some(first) = path.first().cloned() else {
        return;
    };
    match first.as_str() {
        "self" => {
            let mut abs = vec![krate.to_string()];
            abs.extend(module.iter().cloned());
            abs.extend(path.drain(1..));
            path = abs;
        }
        "super" => {
            let mut abs = vec![krate.to_string()];
            let parent = module.len().saturating_sub(1);
            abs.extend(module[..parent].iter().cloned());
            abs.extend(path.drain(1..));
            path = abs;
        }
        _ => {
            let norm = normalize_crate_seg(&first, krate);
            if let Some(slot) = path.first_mut() {
                *slot = norm;
            }
        }
    }
    scope.uses.insert(alias, path);
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(toks: &[(usize, &Token)], open: usize) -> usize {
    let mut depth = 0i64;
    for (j, (_, t)) in toks.iter().enumerate().skip(open) {
        if t.is_op("{") {
            depth += 1;
        } else if t.is_op("}") {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Splits a token slice on commas at brace depth 0.
fn split_top_commas<'s, 't>(toks: &'s [(usize, &'t Token)]) -> Vec<&'s [(usize, &'t Token)]> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut start = 0usize;
    for (j, (_, t)) in toks.iter().enumerate() {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => depth -= 1,
            "," if depth == 0 => {
                out.push(&toks[start..j]);
                start = j + 1;
            }
            _ => {}
        }
    }
    out.push(&toks[start..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;
    use std::path::PathBuf;

    fn table_of(rel: &str, src: &str) -> (SymbolTable, Vec<ScannedFile>) {
        let files = vec![scan(PathBuf::from(rel), rel.into(), src)];
        (SymbolTable::build(&files), files)
    }

    #[test]
    fn crate_and_module_mapping() {
        assert_eq!(
            crate_and_module("crates/census/src/supervisor.rs"),
            ("census".into(), vec!["supervisor".into()])
        );
        assert_eq!(
            crate_and_module("crates/cli/src/commands/mod.rs"),
            ("cli".into(), vec!["commands".into()])
        );
        assert_eq!(
            crate_and_module("crates/cli/src/main.rs"),
            ("cli".into(), vec![])
        );
        assert_eq!(crate_and_module("src/lib.rs"), ("v6census".into(), vec![]));
        assert_eq!(crate_and_module("l006_bad.rs"), ("l006_bad".into(), vec![]));
    }

    #[test]
    fn free_fns_methods_and_modules() {
        let src = "\
pub fn top() {}
mod inner {
    pub fn nested() {}
}
struct S;
impl S {
    pub fn method(&self) -> Result<(), E> { Ok(()) }
}
impl std::fmt::Display for S {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
}
trait T {
    fn required(&self);
    fn defaulted(&self) { body(); }
}
";
        let (t, _) = table_of("crates/x/src/lib.rs", src);
        let names: Vec<&str> = t.fns.iter().map(|f| f.qname.as_str()).collect();
        assert!(names.contains(&"x::top"), "{names:?}");
        assert!(names.contains(&"x::inner::nested"), "{names:?}");
        assert!(names.contains(&"x::S::method"), "{names:?}");
        assert!(names.contains(&"x::S::fmt"), "{names:?}");
        assert!(names.contains(&"x::T::required"), "{names:?}");
        assert!(names.contains(&"x::T::defaulted"), "{names:?}");
        let method = &t.fns[t.methods_by_ty[&("S".into(), "method".into())][0]];
        assert!(method.returns_result);
        assert!(method.is_pub);
        assert!(method.body.is_some());
        let required = &t.fns[t.methods_by_ty[&("T".into(), "required".into())][0]];
        assert!(required.body.is_none(), "bodyless trait decl");
    }

    #[test]
    fn bodies_span_their_braces() {
        let src = "fn a() { if x { y(); } }\nfn b() {}\n";
        let (t, files) = table_of("crates/x/src/lib.rs", src);
        assert_eq!(t.fns.len(), 2);
        let (s, e) = t.fns[0].body.expect("a has a body");
        let toks = &files[0].tokens;
        assert!(toks[s].is_op("{"));
        assert!(toks[e - 1].is_op("}"));
        let inner: Vec<_> = toks[s..e].iter().filter(|t| t.is_ident("y")).collect();
        assert_eq!(inner.len(), 1, "body covers nested blocks");
        assert!(t.fns[1].body.is_some());
    }

    #[test]
    fn use_declarations_resolve() {
        let src = "\
use v6census_census::supervisor::run_census;
use crate::trie::{densify, Node as TrieNode};
use std::collections::BTreeMap;
use self::sub::helper;
fn f() {}
";
        let (t, _) = table_of("crates/cli/src/commands/census.rs", src);
        let uses = &t.scopes[0].uses;
        assert_eq!(
            uses["run_census"],
            vec!["census", "supervisor", "run_census"]
        );
        assert_eq!(uses["densify"], vec!["cli", "trie", "densify"]);
        assert_eq!(uses["TrieNode"], vec!["cli", "trie", "Node"]);
        assert_eq!(uses["BTreeMap"], vec!["std", "collections", "BTreeMap"]);
        assert_eq!(
            uses["helper"],
            vec!["cli", "commands", "census", "sub", "helper"]
        );
    }

    #[test]
    fn impl_trait_in_signature_keeps_the_body() {
        // Regression: `impl` inside a fn signature (param or return
        // position) used to overwrite the pending fn with a bogus
        // impl-block scope, dropping the body (and with it every
        // call-graph edge out of the function).
        let src = "\
fn helper(n: u64, f: impl Fn(u64) -> u64) -> impl Iterator<Item = u64> {
    inner();
    std::iter::once(f(n))
}
fn inner() {}
fn outer(x: impl Into<String>) {
    fn nested() {}
    nested();
}
";
        let (t, files) = table_of("crates/x/src/lib.rs", src);
        let helper = t.fns.iter().find(|f| f.name == "helper").expect("helper");
        assert!(helper.self_ty.is_none(), "not a method: {helper:?}");
        let (s, e) = helper.body.expect("impl Trait must not steal the body");
        let body = &files[0].tokens[s..e];
        assert!(
            body.iter().any(|t| t.is_ident("inner")),
            "body covers the call to inner"
        );
        let nested = t.fns.iter().find(|f| f.name == "nested").expect("nested");
        assert!(
            nested.self_ty.is_none(),
            "nested fn is not a method of the trait name: {nested:?}"
        );
        assert_eq!(nested.qname, "x::nested");
        let outer = t.fns.iter().find(|f| f.name == "outer").expect("outer");
        assert!(outer.body.is_some());
    }

    #[test]
    fn test_region_fns_are_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n}\n";
        let (t, _) = table_of("crates/x/src/lib.rs", src);
        let lib = t.fns.iter().find(|f| f.name == "lib").expect("lib");
        let test = t.fns.iter().find(|f| f.name == "t").expect("t");
        assert!(!lib.is_test);
        assert!(test.is_test);
        assert_eq!(test.qname, "x::tests::t");
    }

    #[test]
    fn suffix_lookup() {
        let src = "fn main() {}\nmod commands { pub fn census() {} }\n";
        let (t, _) = table_of("crates/cli/src/main.rs", src);
        assert_eq!(t.find_by_suffix("cli::main").len(), 1);
        assert_eq!(t.find_by_suffix("commands::census").len(), 1);
        assert_eq!(t.find_by_suffix("nope::census").len(), 0);
    }
}
