//! The rule registry: project-specific contracts with stable ids.
//!
//! Per-file lexical rules:
//!
//! | id   | name                     | contract                                |
//! |------|--------------------------|-----------------------------------------|
//! | L001 | no-panic-paths           | no `unwrap`/`expect`/`panic!`/`todo!`/  |
//! |      |                          | `unimplemented!`/`unreachable!`/literal |
//! |      |                          | indexing in non-test library code       |
//! | L002 | determinism              | no `HashMap`/`HashSet`, wall-clock      |
//! |      |                          | reads, or unstable float formatting in  |
//! |      |                          | modules feeding product output          |
//! | L003 | cast-safety              | no raw truncating `as u8/u16/u32/usize` |
//! |      |                          | in bit/nybble math                      |
//! | L004 | error-taxonomy           | public `fn -> Result` uses typed errors |
//! | L005 | exit-codes               | `process::exit` only with documented    |
//! |      |                          | `EXIT_*` constants                      |
//! | L006 | unchecked-bit-arithmetic | no bare `+ - *` on sized integers or    |
//! |      |                          | variable-amount shifts in bit math      |
//!
//! Workspace-level semantic rules (run over the symbol table and call
//! graph, see [`crate::symbols`] / [`crate::callgraph`]):
//!
//! | id   | name                     | contract                                |
//! |------|--------------------------|-----------------------------------------|
//! | L007 | discarded-results        | `let _ =` / trailing `.ok();` must not  |
//! |      |                          | swallow a workspace `Result`            |
//! | L008 | vfs-bypass               | durability-scoped modules never mutate  |
//! |      |                          | the real filesystem behind `core::vfs`  |
//! |      |                          | (see [`crate::effects`])                |
//! | R001 | panic-reachability       | no non-test call path from the          |
//! |      |                          | configured entry points reaches a       |
//! |      |                          | panicking construct (see               |
//! |      |                          | [`crate::reach`])                       |
//! | R003 | lock-order               | the interprocedural lock-acquisition    |
//! |      |                          | graph is acyclic (see [`crate::locks`]) |
//! | R004 | blocking-under-lock      | no path blocks (I/O, sleep, join, recv) |
//! |      |                          | while a Mutex/RwLock guard is live      |
//! |      |                          | (see [`crate::effects`])                |
//! | R005 | alloc-in-hot-loop        | no per-call allocation inside a loop    |
//! |      |                          | reachable from a `[hot]` entry point    |
//! |      |                          | (see [`crate::allocs`])                 |
//! | R006 | capacity-discipline      | a Vec/String grown in a loop shows a    |
//! |      |                          | dominating reservation or is a `&mut`   |
//! |      |                          | out-param (see [`crate::allocs`])       |
//!
//! Every rule is scoped by path prefixes from `lint.toml` and can be
//! suppressed per line (or per file) with
//! `// lint: allow(<rule>, reason = "...")`.

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::lexer::{int_suffix, TokKind, Token};
use crate::report::{Diagnostic, Severity};
use crate::scan::ScannedFile;
use crate::symbols::{FnSym, SymbolTable};
use std::collections::{BTreeMap, BTreeSet};

/// A lint rule over one scanned file.
pub trait Rule {
    /// Stable id, e.g. `L001`.
    fn id(&self) -> &'static str;
    /// Human-readable name, e.g. `no-panic-paths`.
    fn name(&self) -> &'static str;
    /// One-line contract description (for `--list-rules`).
    fn describe(&self) -> &'static str;
    /// Appends findings for `file` to `out`.
    fn check(&self, file: &ScannedFile, cfg: &Config, out: &mut Vec<Diagnostic>);
}

/// All registered per-file rules, in id order.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoPanicPaths),
        Box::new(Determinism),
        Box::new(CastSafety),
        Box::new(ErrorTaxonomy),
        Box::new(ExitCodes),
        Box::new(UncheckedArith),
    ]
}

/// Workspace-level context handed to semantic rules: every scanned
/// file plus the symbol table and call graph built over them.
pub struct Workspace<'a> {
    /// All scanned files, in discovery order.
    pub files: &'a [ScannedFile],
    /// The item-level symbol table.
    pub symbols: &'a SymbolTable,
    /// The intra-workspace call graph (same fn indexing as `symbols`).
    pub calls: &'a CallGraph,
}

/// A lint rule over the whole workspace at once — for contracts that a
/// single file cannot witness (cross-crate data flow, reachability).
pub trait SemanticRule {
    /// Stable id, e.g. `L007`.
    fn id(&self) -> &'static str;
    /// Human-readable name, e.g. `discarded-results`.
    fn name(&self) -> &'static str;
    /// One-line contract description (for `--list-rules`).
    fn describe(&self) -> &'static str;
    /// Appends findings to `out`. The engine scopes each finding by
    /// its own file path afterwards.
    fn check(&self, ws: &Workspace<'_>, cfg: &Config, out: &mut Vec<Diagnostic>);
}

/// All registered semantic rules, in id order.
pub fn semantic_registry() -> Vec<Box<dyn SemanticRule>> {
    vec![
        Box::new(DiscardedResults),
        Box::new(crate::effects::VfsBypass),
        Box::new(crate::reach::PanicReach),
        Box::new(crate::dataflow::BitDomain),
        Box::new(crate::locks::LockOrder),
        Box::new(crate::effects::BlockingUnderLock),
        Box::new(crate::allocs::AllocInHotLoop),
        Box::new(crate::allocs::CapacityDiscipline),
    ]
}

/// Builds a semantic-rule finding anchored at `line` of `file`.
pub(crate) fn semantic_finding(
    rule: &str,
    name: &'static str,
    file: &ScannedFile,
    line: usize,
    message: String,
    chain: Option<String>,
) -> Diagnostic {
    let snippet = file
        .lines
        .get(line.saturating_sub(1))
        .map(|l| l.code.trim().to_string())
        .unwrap_or_default();
    Diagnostic {
        rule: rule.to_string(),
        name,
        rel: file.rel.clone(),
        line,
        message,
        snippet,
        chain,
        severity: Severity::Deny,
        suppressed: false,
        discharged_by: None,
    }
}

/// Builds a finding with the file/line context filled in. Severity
/// starts at `Deny`; the engine re-maps it from the CLI flags.
fn finding(rule: &dyn Rule, file: &ScannedFile, line: usize, message: String) -> Diagnostic {
    let snippet = file
        .lines
        .get(line.saturating_sub(1))
        .map(|l| l.code.trim().to_string())
        .unwrap_or_default();
    Diagnostic {
        rule: rule.id().to_string(),
        name: rule.name(),
        rel: file.rel.clone(),
        line,
        message,
        snippet,
        chain: None,
        severity: Severity::Deny,
        suppressed: false,
        discharged_by: None,
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Occurrences of `needle` in `hay` whose surrounding characters do not
/// extend an identifier (so `panic!` does not match `dont_panic!`, and
/// `u8` does not match `u80`). A boundary is only required on a side
/// where the needle itself starts/ends with an identifier char —
/// `.unwrap()` legitimately follows its receiver.
pub(crate) fn token_positions(hay: &str, needle: &str) -> Vec<usize> {
    let needs_before = needle.chars().next().is_some_and(is_ident_char);
    let needs_after = needle.chars().next_back().is_some_and(is_ident_char);
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(i) = hay[from..].find(needle) {
        let at = from + i;
        let before_ok = !needs_before
            || hay[..at]
                .chars()
                .next_back()
                .is_none_or(|c| !is_ident_char(c));
        let after_ok = !needs_after
            || hay[at + needle.len()..]
                .chars()
                .next()
                .is_none_or(|c| !is_ident_char(c));
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + needle.len();
    }
    out
}

/// Iterates the non-test lines of a file as `(1-based line, code)`.
pub(crate) fn code_lines(file: &ScannedFile) -> impl Iterator<Item = (usize, &str)> {
    file.lines
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.in_test && !l.code.trim().is_empty())
        .map(|(i, l)| (i + 1, l.code.as_str()))
}

// ---------------------------------------------------------------- L001

/// L001 no-panic-paths: library code must return typed errors, not die.
pub struct NoPanicPaths;

/// What L001 looks for, and why each token is a panic path.
pub(crate) const PANIC_TOKENS: &[(&str, &str)] = &[
    (".unwrap()", "panics on None/Err"),
    (".expect(", "panics on None/Err"),
    ("panic!(", "unconditional panic"),
    ("todo!(", "unconditional panic"),
    ("unimplemented!(", "unconditional panic"),
    ("unreachable!(", "panics if ever reached"),
];

impl Rule for NoPanicPaths {
    fn id(&self) -> &'static str {
        "L001"
    }
    fn name(&self) -> &'static str {
        "no-panic-paths"
    }
    fn describe(&self) -> &'static str {
        "no unwrap/expect/panic!/todo!/unimplemented!/unreachable!/indexing-by-literal in non-test library code"
    }
    fn check(&self, file: &ScannedFile, _cfg: &Config, out: &mut Vec<Diagnostic>) {
        for (line_no, code) in code_lines(file) {
            for &(tok, why) in PANIC_TOKENS {
                // `.unwrap()` / `.expect(` start with '.', which the
                // boundary check treats as a non-ident char on both
                // sides, so token_positions works for all of these.
                if !token_positions(code, tok).is_empty() {
                    out.push(finding(
                        self,
                        file,
                        line_no,
                        format!(
                            "`{}` {} — return the crate's typed error instead",
                            tok.trim_end_matches('('),
                            why
                        ),
                    ));
                }
            }
            for at in literal_index_positions(code) {
                let upto = &code[at..];
                let end = upto.find(']').map(|e| at + e + 1).unwrap_or(code.len());
                out.push(finding(
                    self,
                    file,
                    line_no,
                    format!(
                        "literal indexing `{}` panics when out of bounds — destructure or use .get()",
                        &code[at..end]
                    ),
                ));
            }
        }
    }
}

/// Positions of `[` starting a literal index (`x[0]`, `self.0[3]`) —
/// a `[` whose preceding non-space char continues an expression and
/// whose bracketed content is an integer literal.
pub(crate) fn literal_index_positions(code: &str) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, c) in code.char_indices() {
        if c != '[' {
            continue;
        }
        let prev = code[..i].trim_end().chars().next_back();
        let indexes_expr = prev.is_some_and(|p| is_ident_char(p) || p == ')' || p == ']');
        if !indexes_expr {
            continue;
        }
        let inner_end = match code[i + 1..].find(']') {
            Some(e) => i + 1 + e,
            None => continue,
        };
        let inner = code[i + 1..inner_end].trim();
        if !inner.is_empty() && inner.chars().all(|c| c.is_ascii_digit() || c == '_') {
            out.push(i);
        }
    }
    out
}

// ---------------------------------------------------------------- L002

/// L002 determinism: modules feeding `equivalence_key` or product
/// output must not read iteration-order- or wall-clock-dependent state,
/// and must not format floats in run-to-run-unstable ways.
pub struct Determinism;

/// Default forbidden tokens when `lint.toml` does not override them.
const DETERMINISM_TOKENS: &[&str] = &[
    "HashMap",
    "HashSet",
    "SystemTime::now",
    "Instant::now",
    "RandomState",
];

impl Rule for Determinism {
    fn id(&self) -> &'static str {
        "L002"
    }
    fn name(&self) -> &'static str {
        "determinism"
    }
    fn describe(&self) -> &'static str {
        "no HashMap/HashSet, wall-clock reads, or unstable float formatting in product-producing modules"
    }
    fn check(&self, file: &ScannedFile, cfg: &Config, out: &mut Vec<Diagnostic>) {
        let configured = cfg.list("rules.L002", "tokens");
        let defaults: Vec<String> = DETERMINISM_TOKENS.iter().map(|s| s.to_string()).collect();
        let tokens: &[String] = if configured.is_empty() {
            &defaults
        } else {
            configured
        };
        for (line_no, code) in code_lines(file) {
            for tok in tokens {
                if !token_positions(code, tok).is_empty() {
                    out.push(finding(
                        self,
                        file,
                        line_no,
                        format!(
                            "`{tok}` is nondeterministic (iteration order or wall clock) in a module that feeds equivalence_key/product output — use BTreeMap/BTreeSet or plumb times through explicitly"
                        ),
                    ));
                }
            }
        }
        // Float-format check runs over the *string literals* the scanner
        // collected, because format strings are invisible in `code`.
        for (i, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for s in &line.strings {
                if let Some(spec) = unstable_float_format(s) {
                    out.push(finding(
                        self,
                        file,
                        i + 1,
                        format!(
                            "format spec `{spec}` (scientific or runtime-varying precision) can change product bytes between runs — use a fixed `{{:.N}}` precision"
                        ),
                    ));
                }
            }
        }
    }
}

/// Scans a format string for specs whose rendering varies with runtime
/// values: scientific notation (`{:e}`/`{:E}`) and argument-supplied
/// precision (`{:.*}`, `{:.1$}`, `{:.prec$}`). Returns the first such
/// spec.
fn unstable_float_format(s: &str) -> Option<String> {
    let mut chars = s.char_indices().peekable();
    while let Some((start, c)) = chars.next() {
        if c != '{' {
            continue;
        }
        if chars.peek().map(|&(_, c)| c) == Some('{') {
            chars.next(); // escaped `{{`
            continue;
        }
        let rest = &s[start + 1..];
        let Some(end) = rest.find('}') else { break };
        let spec = &rest[..end];
        if let Some(fmt) = spec.split_once(':').map(|(_, f)| f) {
            let scientific = fmt.ends_with('e') || fmt.ends_with('E');
            let runtime_precision = fmt.contains(".*")
                || (fmt.contains('.') && fmt[fmt.find('.').unwrap_or(0)..].contains('$'));
            if scientific || runtime_precision {
                return Some(format!("{{{spec}}}"));
            }
        }
    }
    None
}

// ---------------------------------------------------------------- L003

/// L003 cast-safety: raw `as u8/u16/u32/usize` silently truncates;
/// bit/nybble math must go through `v6census_addr::cast` helpers (which
/// `debug_assert` losslessness) or the lossless `uN::from`.
pub struct CastSafety;

const NARROWING_TYPES: &[&str] = &["u8", "u16", "u32", "usize"];

impl Rule for CastSafety {
    fn id(&self) -> &'static str {
        "L003"
    }
    fn name(&self) -> &'static str {
        "cast-safety"
    }
    fn describe(&self) -> &'static str {
        "no raw `as u8/u16/u32/usize` in bit/nybble math — use v6census_addr::cast::checked_* or uN::from"
    }
    fn check(&self, file: &ScannedFile, _cfg: &Config, out: &mut Vec<Diagnostic>) {
        for (line_no, code) in code_lines(file) {
            for at in token_positions(code, "as") {
                let after = code[at + 2..].trim_start();
                let Some(ty) = NARROWING_TYPES.iter().find(|t| {
                    after.starts_with(**t)
                        && after[t.len()..]
                            .chars()
                            .next()
                            .is_none_or(|c| !is_ident_char(c))
                }) else {
                    continue;
                };
                out.push(finding(
                    self,
                    file,
                    line_no,
                    format!(
                        "raw `as {ty}` can silently truncate — use cast::checked_{ty} (debug_asserts losslessness), `{ty}::from` for widening, or justify with an allow pragma"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------- L004

/// L004 error-taxonomy: a public fallible API must expose the crate's
/// typed error so callers can triage programmatically; `String` and
/// `Box<dyn Error>` erase the taxonomy.
pub struct ErrorTaxonomy;

impl Rule for ErrorTaxonomy {
    fn id(&self) -> &'static str {
        "L004"
    }
    fn name(&self) -> &'static str {
        "error-taxonomy"
    }
    fn describe(&self) -> &'static str {
        "public fn returning Result must use a typed error, not String or Box<dyn Error>"
    }
    fn check(&self, file: &ScannedFile, _cfg: &Config, out: &mut Vec<Diagnostic>) {
        let lines: Vec<(usize, &str)> = code_lines(file).collect();
        for (idx, &(line_no, code)) in lines.iter().enumerate() {
            let Some(fn_at) = pub_fn_position(code) else {
                continue;
            };
            // Join the signature until its body `{` or declaration `;`.
            let mut sig = code[fn_at..].to_string();
            let mut extra = 0usize;
            while !sig.contains('{') && !sig.contains(';') && extra < 24 {
                extra += 1;
                match lines.get(idx + extra) {
                    Some(&(_, next)) => {
                        sig.push(' ');
                        sig.push_str(next);
                    }
                    None => break,
                }
            }
            let sig = sig.split('{').next().unwrap_or(&sig);
            let Some(ret) = sig.split("->").nth(1) else {
                continue;
            };
            if let Some(err_ty) = stringly_error(ret) {
                out.push(finding(
                    self,
                    file,
                    line_no,
                    format!(
                        "public fn returns `Result<_, {err_ty}>` — use the crate's typed error so callers can triage variants"
                    ),
                ));
            }
        }
    }
}

/// The byte position of `fn` in a `pub fn` / `pub(crate) fn` /
/// `pub const fn` / `pub async fn` item line, if this line declares one.
fn pub_fn_position(code: &str) -> Option<usize> {
    for at in token_positions(code, "fn") {
        let before = code[..at].trim_end();
        // Everything between `pub` and `fn` must be visibility scope or
        // fn qualifiers; that rules out `pub struct S { f: fn() }` etc.
        let Some(p) = before.rfind("pub") else {
            continue;
        };
        let between = before[p + 3..].trim();
        // Strip a `(crate)` / `(super)` / `(in path)` visibility scope.
        let vis_stripped = if let Some(rest) = between.strip_prefix('(') {
            rest.split_once(')').map(|(_, r)| r.trim()).unwrap_or(rest)
        } else {
            between
        };
        let quals_ok = vis_stripped
            .split_whitespace()
            .all(|w| matches!(w, "const" | "async" | "unsafe" | "extern" | "\"C\""));
        if quals_ok {
            return Some(at);
        }
    }
    None
}

/// If `ret` is `Result<_, E>` with a stringly `E`, returns `E`.
fn stringly_error(ret: &str) -> Option<String> {
    let at = ret.find("Result<")?;
    let args = &ret[at + "Result<".len()..];
    // Split the generic args at top angle-bracket level.
    let mut depth = 0i32;
    let mut top_commas = Vec::new();
    let mut end = args.len();
    for (i, c) in args.char_indices() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' if depth == 0 => {
                end = i;
                break;
            }
            '>' | ')' | ']' => depth -= 1,
            ',' if depth == 0 => top_commas.push(i),
            _ => {}
        }
    }
    let err_ty = match top_commas.first() {
        Some(&comma) => args[comma + 1..end].trim(),
        None => return None, // one-arg Result alias — typed by definition
    };
    if err_ty == "String" || err_ty.starts_with("Box<dyn") {
        Some(err_ty.to_string())
    } else {
        None
    }
}

// ---------------------------------------------------------------- L005

/// L005 exit-codes: the CLI's exit-code contract (0 ok / 1 data /
/// 2 usage / 3 degraded) is enforced by requiring every `process::exit`
/// to name one of the documented constants.
pub struct ExitCodes;

/// Default allowed arguments when `lint.toml` does not override them.
const EXIT_IDENTS: &[&str] = &["EXIT_OK", "EXIT_DATA_ERROR", "EXIT_USAGE", "EXIT_DEGRADED"];

impl Rule for ExitCodes {
    fn id(&self) -> &'static str {
        "L005"
    }
    fn name(&self) -> &'static str {
        "exit-codes"
    }
    fn describe(&self) -> &'static str {
        "process::exit must use the documented EXIT_OK/EXIT_DATA_ERROR/EXIT_USAGE/EXIT_DEGRADED constants"
    }
    fn check(&self, file: &ScannedFile, cfg: &Config, out: &mut Vec<Diagnostic>) {
        let configured = cfg.list("rules.L005", "exit_idents");
        let defaults: Vec<String> = EXIT_IDENTS.iter().map(|s| s.to_string()).collect();
        let allowed: &[String] = if configured.is_empty() {
            &defaults
        } else {
            configured
        };
        for (line_no, code) in code_lines(file) {
            let mut from = 0;
            while let Some(i) = code[from..].find("process::exit(") {
                let at = from + i;
                let arg_start = at + "process::exit(".len();
                let arg = match code[arg_start..].find(')') {
                    Some(e) => code[arg_start..arg_start + e].trim(),
                    None => code[arg_start..].trim(),
                };
                // Accept qualified paths by their last segment.
                let last = arg.rsplit("::").next().unwrap_or(arg);
                if !allowed.iter().any(|a| a == last) {
                    out.push(finding(
                        self,
                        file,
                        line_no,
                        format!(
                            "`process::exit({arg})` bypasses the documented exit-code contract — use one of {}",
                            allowed.join("/")
                        ),
                    ));
                }
                from = arg_start;
            }
        }
    }
}

// ---------------------------------------------------------------- L006

/// L006 unchecked-bit-arithmetic: in bit-twiddling code, bare `+ - *`
/// on explicitly sized integers overflows silently in release builds
/// (and panics in debug), and a shift by a non-literal amount panics in
/// debug whenever the amount reaches the type's width. Both must be
/// spelled with `checked_*`/`wrapping_*`/`saturating_*` (or the audited
/// `v6census_addr::bits` helpers) so the overflow policy is explicit.
pub struct UncheckedArith;

/// The explicitly sized integer types L006 tracks. `usize`/`isize` are
/// excluded: they are index/len arithmetic, not bit math.
pub(crate) const SIZED_INTS: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128",
];

/// Identifier keywords that precede a *unary* `-`/`*`, not a binary
/// operator, despite lexing as idents.
const EXPR_BREAK_KEYWORDS: &[&str] = &[
    "return", "match", "if", "while", "in", "break", "else", "let", "as",
];

/// Arithmetic panic/overflow sites in one file as `(line, what)`.
/// Shared between the L006 rule and R001 panic-reachability.
pub(crate) fn arith_sites(file: &ScannedFile) -> Vec<(usize, String)> {
    let toks: Vec<&Token> = file
        .tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokKind::LineComment { .. } | TokKind::BlockComment { .. }
            )
        })
        .collect();

    // Names declared with an explicitly sized type (`x: u8` covers
    // locals, params, and struct fields) or `let`-bound to a
    // sized-suffix literal (`let m = 1u128`).
    let mut tracked: BTreeSet<&str> = BTreeSet::new();
    for (w, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && toks.get(w + 1).is_some_and(|n| n.is_op(":"))
            && toks
                .get(w + 2)
                .is_some_and(|n| n.kind == TokKind::Ident && SIZED_INTS.contains(&n.text.as_str()))
        {
            tracked.insert(t.text.as_str());
        }
        if t.is_ident("let") {
            let mut n = w + 1;
            if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
                n += 1;
            }
            if toks.get(n).is_some_and(|t| t.kind == TokKind::Ident)
                && toks.get(n + 1).is_some_and(|t| t.is_op("="))
                && toks.get(n + 2).is_some_and(|t| {
                    t.kind == TokKind::Int
                        && int_suffix(&t.text).is_some_and(|s| SIZED_INTS.contains(&s))
                })
            {
                if let Some(name) = toks.get(n) {
                    tracked.insert(name.text.as_str());
                }
            }
        }
    }

    let sized_operand = |tok: Option<&&Token>| {
        tok.is_some_and(|t| match t.kind {
            TokKind::Ident => tracked.contains(t.text.as_str()),
            TokKind::Int => int_suffix(&t.text).is_some_and(|s| SIZED_INTS.contains(&s)),
            _ => false,
        })
    };
    let int_literal = |tok: Option<&&Token>| tok.is_some_and(|t| t.kind == TokKind::Int);

    let mut out = Vec::new();
    // Angle-bracket depth, so `>>` closing nested generics
    // (`IntoIterator<Item = Addr>>(iter`) is not mistaken for a shift.
    // A `<` opens generics only when it hugs the preceding ident or
    // `::` (`Vec<`, `collect::<`) AND the next token can start a type;
    // a spaced `a < b` is a comparison. An un-spaced comparison
    // (`a<b`) still opens a bogus context, so operators that cannot
    // occur inside generics (`&&`, `||`, `==`, …) reset the depth —
    // otherwise a real shift later in the same statement would be
    // swallowed. (`a<b` followed by a shift before any such operator,
    // e.g. in one argument list, remains a known blind spot.)
    let mut angle = 0usize;
    for (j, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Op {
            continue;
        }
        let hugs_prev = j.checked_sub(1).and_then(|p| toks.get(p)).is_some_and(|p| {
            p.end == t.start && (p.kind == TokKind::Ident || p.is_op("::") || p.is_op(">"))
        });
        let next_starts_type = toks.get(j + 1).is_some_and(|n| match n.kind {
            TokKind::Ident | TokKind::Lifetime | TokKind::Int => true,
            TokKind::Op => matches!(n.text.as_str(), "<" | "&" | "(" | "[" | "*"),
            _ => false,
        });
        match t.text.as_str() {
            "<" if hugs_prev && next_starts_type => angle = angle.saturating_add(1),
            ">" if angle > 0 => angle = angle.saturating_sub(1),
            ">>" if angle > 0 => {
                angle = angle.saturating_sub(2);
                continue;
            }
            ";" | "{" | "}" | "&&" | "||" | "==" | "!=" | "<=" | ">=" | "=>" => angle = 0,
            _ => {}
        }
        if file.is_test_line(t.line) {
            continue;
        }
        let prev = j.checked_sub(1).and_then(|p| toks.get(p));
        let next = toks.get(j + 1);
        // A binary operator's left operand just ended: an ident (but
        // not a statement keyword), a literal, or a closing bracket.
        let binary = prev.is_some_and(|p| match p.kind {
            TokKind::Ident => !EXPR_BREAK_KEYWORDS.contains(&p.text.as_str()),
            TokKind::Int | TokKind::Float => true,
            TokKind::Op => matches!(p.text.as_str(), ")" | "]"),
            _ => false,
        });
        if !binary {
            continue;
        }
        match t.text.as_str() {
            // Flag when an operand is a tracked sized integer — unless
            // both sides are literals, which the compiler
            // const-evaluates and rejects on overflow itself.
            "+" | "-" | "*" | "+=" | "-=" | "*="
                if (sized_operand(prev) || sized_operand(next))
                    && !(int_literal(prev) && int_literal(next)) =>
            {
                out.push((
                    t.line,
                    format!("bare `{}` on a sized integer can overflow", t.text),
                ));
            }
            "<<" | ">>" | "<<=" | ">>=" => {
                // A literal shift amount is compiler-checked; anything
                // else can reach the type's width at runtime. Requiring
                // an expression start on the right skips `Vec<Vec<u8>>`
                // generic closers.
                let next_is_expr = next.is_some_and(|t| {
                    matches!(t.kind, TokKind::Ident | TokKind::Int) || t.is_op("(")
                });
                if next_is_expr && !int_literal(next) {
                    out.push((
                        t.line,
                        format!(
                            "`{}` by a non-literal amount panics in debug once the amount reaches the type's width",
                            t.text
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

impl Rule for UncheckedArith {
    fn id(&self) -> &'static str {
        "L006"
    }
    fn name(&self) -> &'static str {
        "unchecked-bit-arithmetic"
    }
    fn describe(&self) -> &'static str {
        "no bare + - * on sized integers or variable-amount shifts in bit math — use checked_*/wrapping_* or addr::bits"
    }
    fn check(&self, file: &ScannedFile, _cfg: &Config, out: &mut Vec<Diagnostic>) {
        for (line, what) in arith_sites(file) {
            out.push(finding(
                self,
                file,
                line,
                format!(
                    "{what} — make the overflow policy explicit with checked_*/wrapping_*/saturating_* or the audited v6census_addr::bits helpers"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------- L007

/// L007 discarded-results: the workspace's error taxonomy only works if
/// callers look at the `Result`s. `let _ = fallible()` and a trailing
/// `fallible().ok();` both compile silently while dropping the error.
pub struct DiscardedResults;

impl SemanticRule for DiscardedResults {
    fn id(&self) -> &'static str {
        "L007"
    }
    fn name(&self) -> &'static str {
        "discarded-results"
    }
    fn describe(&self) -> &'static str {
        "`let _ =` or a trailing `.ok();` must not swallow a workspace Result — handle it, propagate it, or pragma with a reason"
    }
    fn check(&self, ws: &Workspace<'_>, _cfg: &Config, out: &mut Vec<Diagnostic>) {
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        // Comment-free token views, built lazily once per file.
        let mut views: BTreeMap<usize, Vec<(usize, &Token)>> = BTreeMap::new();
        for (id, f) in ws.symbols.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let Some(file) = ws.files.get(f.file) else {
                continue;
            };
            for call in ws.calls.calls.get(id).into_iter().flatten() {
                let candidates: Vec<&FnSym> = call
                    .callees
                    .iter()
                    .filter_map(|&k| ws.symbols.fns.get(k))
                    .filter(|c| !c.is_test)
                    .collect();
                if candidates.is_empty() || !candidates.iter().any(|c| c.returns_result) {
                    continue;
                }
                // The call resolves by name only, so same-name
                // infallible candidates make a `let _ =` legitimate;
                // require *every* candidate to return Result before
                // claiming a Result was discarded there.
                let all_result = candidates.iter().all(|c| c.returns_result);
                let Some(line) = file.lines.get(call.line.saturating_sub(1)) else {
                    continue;
                };
                if line.in_test {
                    continue;
                }
                let toks = views.entry(f.file).or_insert_with(|| {
                    file.tokens
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| {
                            !matches!(
                                t.kind,
                                TokKind::LineComment { .. } | TokKind::BlockComment { .. }
                            )
                        })
                        .collect()
                });
                let Ok(pos) = toks.binary_search_by_key(&call.paren, |&(o, _)| o) else {
                    continue;
                };
                let (stmt_start, saw_eq) = stmt_context(toks, pos);
                let is_let_underscore =
                    toks.get(stmt_start).is_some_and(|(_, t)| t.is_ident("let"))
                        && toks
                            .get(stmt_start + 1)
                            .is_some_and(|(_, t)| t.is_ident("_"))
                        && toks.get(stmt_start + 2).is_some_and(|(_, t)| t.is_op("="));
                let how = if is_let_underscore && all_result {
                    "`let _ =` discards"
                } else if !is_let_underscore && !saw_eq && trailing_ok_discard(toks, pos) {
                    "a trailing `.ok()` swallows"
                } else {
                    continue;
                };
                if seen.insert((f.file, call.line)) {
                    out.push(semantic_finding(
                        self.id(),
                        self.name(),
                        file,
                        call.line,
                        format!(
                            "{how} the Result of `{}` — handle the error, propagate it, or add an allow pragma with a reason",
                            call.expr
                        ),
                        None,
                    ));
                }
            }
        }
    }
}

/// Walks left from the token at `pos` to the start of the enclosing
/// statement. Returns `(statement start index, saw a bare depth-0 `=`)`.
/// Closers passed on the way (a preceding `{ … }` block, a closure
/// body) are skipped as balanced groups so their `;`/`=` don't count.
fn stmt_context(toks: &[(usize, &Token)], pos: usize) -> (usize, bool) {
    let mut depth = 0i64;
    let mut saw_eq = false;
    let mut j = pos;
    while j > 0 {
        j -= 1;
        let (_, t) = toks[j];
        if t.kind != TokKind::Op {
            continue;
        }
        match t.text.as_str() {
            ")" | "]" | "}" => depth += 1,
            "(" | "[" | "{" if depth == 0 => return (j + 1, saw_eq),
            "(" | "[" | "{" => depth -= 1,
            ";" | "," if depth == 0 => return (j + 1, saw_eq),
            "=" if depth == 0 => saw_eq = true,
            _ => {}
        }
    }
    (0, saw_eq)
}

/// True when the postfix chain following the call's argument list (its
/// opening `(` is at `open`) ends in `.ok()` immediately followed by
/// `;` — i.e. the `Result` is converted to an `Option` and dropped.
/// Works on the token stream, so a chain wrapped across lines is seen
/// whole.
fn trailing_ok_discard(toks: &[(usize, &Token)], open: usize) -> bool {
    let Some(mut j) = skip_parens(toks, open) else {
        return false;
    };
    let mut last_is_ok = false;
    loop {
        match toks.get(j).map(|(_, t)| *t) {
            Some(t) if t.is_op(".") => {
                let Some((_, name)) = toks.get(j + 1) else {
                    return false;
                };
                if !matches!(name.kind, TokKind::Ident | TokKind::Int) {
                    return false; // not a field/method chain we model
                }
                let mut after = j + 2;
                // Optional `::<…>` turbofish between name and `(`.
                if toks.get(after).is_some_and(|(_, t)| t.is_op("::"))
                    && toks.get(after + 1).is_some_and(|(_, t)| t.is_op("<"))
                {
                    match skip_angles(toks, after + 1) {
                        Some(n) => after = n,
                        None => return false,
                    }
                }
                if toks.get(after).is_some_and(|(_, t)| t.is_op("(")) {
                    last_is_ok = name.text == "ok" && after == j + 2;
                    match skip_parens(toks, after) {
                        Some(n) => j = n,
                        None => return false,
                    }
                } else {
                    last_is_ok = false; // field access or `.await`
                    j = after;
                }
            }
            Some(t) if t.is_op("?") => {
                last_is_ok = false;
                j += 1;
            }
            Some(t) => return last_is_ok && t.is_op(";"),
            None => return false,
        }
    }
}

/// Index just past the `)` matching the `(` at `open`; `None` when the
/// group never closes.
fn skip_parens(toks: &[(usize, &Token)], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut j = open;
    while let Some((_, t)) = toks.get(j) {
        if t.is_op("(") {
            depth += 1;
        } else if t.is_op(")") {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        }
        j += 1;
    }
    None
}

/// Index just past the `>`/`>>` closing the `<` at `open`; `None` when
/// unbalanced.
fn skip_angles(toks: &[(usize, &Token)], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut j = open;
    while let Some((_, t)) = toks.get(j) {
        match t.text.as_str() {
            "<" => depth += 1,
            "<<" => depth += 2,
            ">" => depth -= 1,
            ">>" => depth -= 2,
            _ => {}
        }
        if depth <= 0 {
            return Some(j + 1);
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;
    use std::path::PathBuf;

    fn check_one(rule: &dyn Rule, src: &str) -> Vec<Diagnostic> {
        let f = scan(PathBuf::from("t.rs"), "t.rs".into(), src);
        let mut out = Vec::new();
        rule.check(&f, &Config::default(), &mut out);
        out
    }

    #[test]
    fn l001_flags_panic_paths_not_lookalikes() {
        let bad = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"n\"); let z = v[0]; }\n";
        assert_eq!(check_one(&NoPanicPaths, bad).len(), 4);
        let ok = "fn f() { x.unwrap_or(0); y.unwrap_or_else(d); v.get(0); w[i]; m[i + 1]; }\n";
        assert!(check_one(&NoPanicPaths, ok).is_empty());
        let test_only = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        assert!(check_one(&NoPanicPaths, test_only).is_empty());
    }

    #[test]
    fn l001_ignores_array_types_and_attributes() {
        let ok =
            "fn f(a: [u8; 6]) -> [u8; 4] { let b: [u8; 2] = m; b }\n#[derive(Debug)]\nstruct S;\n";
        assert!(check_one(&NoPanicPaths, ok).is_empty());
    }

    #[test]
    fn l002_flags_hazards() {
        let bad = "fn f() { let m = HashMap::new(); let t = Instant::now(); }\n";
        assert_eq!(check_one(&Determinism, bad).len(), 2);
        let ok = "fn f() { let m = BTreeMap::new(); let h = MyHashMapLike::new(); }\n";
        assert!(check_one(&Determinism, ok).is_empty());
    }

    #[test]
    fn l002_flags_unstable_float_formats() {
        assert!(unstable_float_format("x {:e} y").is_some());
        assert!(unstable_float_format("{:.*}").is_some());
        assert!(unstable_float_format("{:.1$}").is_some());
        assert!(
            unstable_float_format("{:.3}").is_none(),
            "fixed precision is stable"
        );
        assert!(unstable_float_format("{{:e}} escaped").is_none());
        assert!(unstable_float_format("{:>8}").is_none());
    }

    #[test]
    fn l003_flags_narrowing_as() {
        let bad = "fn f(x: u64) { let a = x as u8; let b = x as usize; }\n";
        assert_eq!(check_one(&CastSafety, bad).len(), 2);
        let ok = "fn f(x: u8) { let a = u32::from(x); let b = x as u64; let c = x as f64; }\n";
        assert!(check_one(&CastSafety, ok).is_empty());
    }

    #[test]
    fn l004_flags_stringly_public_results() {
        let bad = "pub fn f() -> Result<(), String> { Ok(()) }\n";
        assert_eq!(check_one(&ErrorTaxonomy, bad).len(), 1);
        let boxed = "pub fn g(\n    x: u8,\n) -> Result<u8, Box<dyn std::error::Error>> {\n";
        assert_eq!(check_one(&ErrorTaxonomy, boxed).len(), 1);
        let ok = "pub fn f() -> Result<(), MyError> { Ok(()) }\nfn private() -> Result<(), String> { Ok(()) }\npub fn io() -> io::Result<()> { Ok(()) }\n";
        assert!(check_one(&ErrorTaxonomy, ok).is_empty());
    }

    #[test]
    fn l005_requires_named_constants() {
        let bad = "fn f() { std::process::exit(42); }\n";
        assert_eq!(check_one(&ExitCodes, bad).len(), 1);
        let ok =
            "fn f() { std::process::exit(EXIT_USAGE); process::exit(v6census_cli::EXIT_OK); }\n";
        assert!(check_one(&ExitCodes, ok).is_empty());
    }

    #[test]
    fn l006_flags_bare_arithmetic_on_sized_ints() {
        let bad = "\
fn f(len: u8) -> u128 {
    let base = 1u128;
    let a = len - 1;
    let b = base * 3;
    a as u128 + b
}
";
        let diags = check_one(&UncheckedArith, bad);
        assert_eq!(diags.len(), 2, "{diags:?}");
        let ok = "\
fn f(len: u8, i: usize) -> u8 {
    let a = len.wrapping_sub(1);
    let b = i + 1;
    let c = 3 + 4;
    a.checked_mul(2).unwrap_or(0)
}
";
        assert!(
            check_one(&UncheckedArith, ok).is_empty(),
            "usize and checked forms are exempt"
        );
    }

    #[test]
    fn l006_flags_variable_shifts_not_literal_shifts() {
        let bad = "fn f(len: u32) -> u128 { u128::MAX << (128 - len) }\n";
        let diags = check_one(&UncheckedArith, bad);
        assert!(
            diags.iter().any(|d| d.message.contains("`<<`")),
            "{diags:?}"
        );
        let ok =
            "fn f(b: u64) -> u64 { (b << 56) | (b >> 8) }\nfn g() -> Vec<Vec<u8>> { Vec::new() }\n";
        assert!(
            check_one(&UncheckedArith, ok).is_empty(),
            "literal shifts and generic closers are exempt"
        );
    }

    #[test]
    fn l006_ignores_nested_generic_closers() {
        // Regression: `Addr>>(iter` in a generic fn signature is two
        // closing angle brackets, not a right shift whose amount is a
        // parenthesised expression.
        let ok = "\
pub fn from_iter<I: IntoIterator<Item = Addr>>(iter: I) -> AddrSet {
    AddrSet::new()
}
fn collect(xs: &[u64]) -> Vec<Vec<u8>> {
    xs.iter().map(|x| x.to_be_bytes().to_vec()).collect::<Vec<Vec<u8>>>()
}
";
        assert!(check_one(&UncheckedArith, ok).is_empty());
        // Real shifts still flag even after generics appeared earlier
        // in the file (the depth tracker must not leak).
        let bad = "\
pub fn f<I: IntoIterator<Item = u64>>(iter: I, n: u32) -> u128 {
    u128::MAX << (128 - n)
}
";
        let diags = check_one(&UncheckedArith, bad);
        assert!(
            diags.iter().any(|d| d.message.contains("`<<`")),
            "{diags:?}"
        );
    }

    #[test]
    fn l006_unspaced_comparison_does_not_swallow_later_shift() {
        // Regression: `n<m` hugging an ident used to open a bogus
        // generic context, so the depth tracker ate the `>>` later in
        // the same statement and the variable shift went unflagged.
        let bad = "fn f(n: u64, m: u64, k: u32) -> bool { let ok = n<m || (n >> k) == 0; ok }\n";
        let diags = check_one(&UncheckedArith, bad);
        assert!(
            diags.iter().any(|d| d.message.contains("`>>`")),
            "{diags:?}"
        );
        // A spaced comparison followed by a generic closer still parses.
        let ok = "fn g(n: u64) -> bool { n < 3 && Vec::<Vec<u8>>::new().is_empty() }\n";
        assert!(check_one(&UncheckedArith, ok).is_empty());
    }

    #[test]
    fn l006_skips_unary_minus_and_tests() {
        let ok = "\
fn f(x: i8) -> i8 {
    let y = -1i8;
    if x < 0 { return -2i8; }
    y
}
#[cfg(test)]
mod tests {
    fn t(a: u8) -> u8 { a + 1 }
}
";
        assert!(check_one(&UncheckedArith, ok).is_empty());
    }

    fn check_semantic(rule: &dyn SemanticRule, files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let scanned: Vec<ScannedFile> = files
            .iter()
            .map(|(rel, src)| scan(PathBuf::from(rel), (*rel).into(), src))
            .collect();
        let symbols = SymbolTable::build(&scanned);
        let calls = CallGraph::build(&symbols, &scanned);
        let ws = Workspace {
            files: &scanned,
            symbols: &symbols,
            calls: &calls,
        };
        let mut out = Vec::new();
        rule.check(&ws, &Config::default(), &mut out);
        out
    }

    #[test]
    fn l007_flags_discarded_workspace_results() {
        let src = "\
pub fn save() -> Result<(), E> { Ok(()) }
fn driver() {
    let _ = save();
    save().ok();
}
";
        let diags = check_semantic(&DiscardedResults, &[("crates/x/src/lib.rs", src)]);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().any(|d| d.message.contains("`let _ =`")));
        assert!(diags.iter().any(|d| d.message.contains("`.ok()`")));
    }

    #[test]
    fn l007_exempts_handled_results_and_std_calls() {
        let src = "\
pub fn save() -> Result<(), E> { Ok(()) }
fn infallible() {}
fn driver() -> Result<(), E> {
    save()?;
    let kept = save().ok();
    let _ = infallible();
    let _ = writeln!(out, \"x\");
    save()
}
";
        let diags = check_semantic(&DiscardedResults, &[("crates/x/src/lib.rs", src)]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn l007_sees_multiline_ok_chains() {
        // Regression: `.ok()` detection used to inspect only the call
        // name's own line, so wrapping the chain hid the discard.
        let src = "\
pub fn save(x: u64) -> Result<(), E> { Ok(()) }
fn driver() {
    save(1)
        .ok();
}
fn kept() {
    let r = save(2)
        .ok();
    drop(r);
}
";
        let diags = check_semantic(&DiscardedResults, &[("crates/x/src/lib.rs", src)]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        let d = diags.first().expect("one finding");
        assert!(d.message.contains("`.ok()`"), "{}", d.message);
        assert_eq!(d.line, 3, "anchored at the call, not the `.ok()` line");
    }

    #[test]
    fn l007_let_underscore_needs_every_candidate_fallible() {
        // `s.flush()` resolves by name to both methods; the Sink one is
        // infallible, so `let _ =` on an unknown receiver is legitimate.
        let src = "\
struct Sink;
struct Store;
impl Sink {
    pub fn flush(&self) {}
}
impl Store {
    pub fn flush(&self) -> Result<(), E> { Ok(()) }
}
fn mixed(s: &Sink) {
    let _ = s.flush();
}
fn certain(st: &Store) {
    let _ = Store::flush(st);
}
";
        let diags = check_semantic(&DiscardedResults, &[("crates/x/src/lib.rs", src)]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags.first().map(|d| d.line), Some(13), "{diags:?}");
    }
}
