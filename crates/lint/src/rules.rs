//! The rule registry: five project-specific contracts with stable ids.
//!
//! | id   | name            | contract                                         |
//! |------|-----------------|--------------------------------------------------|
//! | L001 | no-panic-paths  | no `unwrap`/`expect`/`panic!`/`todo!`/            |
//! |      |                 | `unimplemented!`/`unreachable!`/literal indexing  |
//! |      |                 | in non-test library code                          |
//! | L002 | determinism     | no `HashMap`/`HashSet`, wall-clock reads, or      |
//! |      |                 | unstable float formatting in modules feeding      |
//! |      |                 | `equivalence_key` / product output                |
//! | L003 | cast-safety     | no raw truncating `as u8/u16/u32/usize` in        |
//! |      |                 | bit/nybble math — use `v6census_addr::cast`       |
//! | L004 | error-taxonomy  | public `fn -> Result` uses typed errors, not      |
//! |      |                 | `String` / `Box<dyn Error>`                       |
//! | L005 | exit-codes      | `process::exit` only with the documented          |
//! |      |                 | `EXIT_*` constants                                |
//!
//! Every rule is scoped by path prefixes from `lint.toml` and can be
//! suppressed per line (or per file) with
//! `// lint: allow(<rule>, reason = "...")`.

use crate::config::Config;
use crate::report::{Diagnostic, Severity};
use crate::scan::ScannedFile;

/// A lint rule over one scanned file.
pub trait Rule {
    /// Stable id, e.g. `L001`.
    fn id(&self) -> &'static str;
    /// Human-readable name, e.g. `no-panic-paths`.
    fn name(&self) -> &'static str;
    /// One-line contract description (for `--list-rules`).
    fn describe(&self) -> &'static str;
    /// Appends findings for `file` to `out`.
    fn check(&self, file: &ScannedFile, cfg: &Config, out: &mut Vec<Diagnostic>);
}

/// All registered rules, in id order.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoPanicPaths),
        Box::new(Determinism),
        Box::new(CastSafety),
        Box::new(ErrorTaxonomy),
        Box::new(ExitCodes),
    ]
}

/// Builds a finding with the file/line context filled in. Severity
/// starts at `Deny`; the engine re-maps it from the CLI flags.
fn finding(rule: &dyn Rule, file: &ScannedFile, line: usize, message: String) -> Diagnostic {
    let snippet = file
        .lines
        .get(line.saturating_sub(1))
        .map(|l| l.code.trim().to_string())
        .unwrap_or_default();
    Diagnostic {
        rule: rule.id().to_string(),
        name: rule.name(),
        rel: file.rel.clone(),
        line,
        message,
        snippet,
        severity: Severity::Deny,
        suppressed: false,
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Occurrences of `needle` in `hay` whose surrounding characters do not
/// extend an identifier (so `panic!` does not match `dont_panic!`, and
/// `u8` does not match `u80`). A boundary is only required on a side
/// where the needle itself starts/ends with an identifier char —
/// `.unwrap()` legitimately follows its receiver.
fn token_positions(hay: &str, needle: &str) -> Vec<usize> {
    let needs_before = needle.chars().next().is_some_and(is_ident_char);
    let needs_after = needle.chars().next_back().is_some_and(is_ident_char);
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(i) = hay[from..].find(needle) {
        let at = from + i;
        let before_ok = !needs_before
            || hay[..at]
                .chars()
                .next_back()
                .is_none_or(|c| !is_ident_char(c));
        let after_ok = !needs_after
            || hay[at + needle.len()..]
                .chars()
                .next()
                .is_none_or(|c| !is_ident_char(c));
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + needle.len();
    }
    out
}

/// Iterates the non-test lines of a file as `(1-based line, code)`.
fn code_lines(file: &ScannedFile) -> impl Iterator<Item = (usize, &str)> {
    file.lines
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.in_test && !l.code.trim().is_empty())
        .map(|(i, l)| (i + 1, l.code.as_str()))
}

// ---------------------------------------------------------------- L001

/// L001 no-panic-paths: library code must return typed errors, not die.
pub struct NoPanicPaths;

/// What L001 looks for, and why each token is a panic path.
const PANIC_TOKENS: &[(&str, &str)] = &[
    (".unwrap()", "panics on None/Err"),
    (".expect(", "panics on None/Err"),
    ("panic!(", "unconditional panic"),
    ("todo!(", "unconditional panic"),
    ("unimplemented!(", "unconditional panic"),
    ("unreachable!(", "panics if ever reached"),
];

impl Rule for NoPanicPaths {
    fn id(&self) -> &'static str {
        "L001"
    }
    fn name(&self) -> &'static str {
        "no-panic-paths"
    }
    fn describe(&self) -> &'static str {
        "no unwrap/expect/panic!/todo!/unimplemented!/unreachable!/indexing-by-literal in non-test library code"
    }
    fn check(&self, file: &ScannedFile, _cfg: &Config, out: &mut Vec<Diagnostic>) {
        for (line_no, code) in code_lines(file) {
            for &(tok, why) in PANIC_TOKENS {
                // `.unwrap()` / `.expect(` start with '.', which the
                // boundary check treats as a non-ident char on both
                // sides, so token_positions works for all of these.
                if !token_positions(code, tok).is_empty() {
                    out.push(finding(
                        self,
                        file,
                        line_no,
                        format!(
                            "`{}` {} — return the crate's typed error instead",
                            tok.trim_end_matches('('),
                            why
                        ),
                    ));
                }
            }
            for at in literal_index_positions(code) {
                let upto = &code[at..];
                let end = upto.find(']').map(|e| at + e + 1).unwrap_or(code.len());
                out.push(finding(
                    self,
                    file,
                    line_no,
                    format!(
                        "literal indexing `{}` panics when out of bounds — destructure or use .get()",
                        &code[at..end]
                    ),
                ));
            }
        }
    }
}

/// Positions of `[` starting a literal index (`x[0]`, `self.0[3]`) —
/// a `[` whose preceding non-space char continues an expression and
/// whose bracketed content is an integer literal.
fn literal_index_positions(code: &str) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, c) in code.char_indices() {
        if c != '[' {
            continue;
        }
        let prev = code[..i].trim_end().chars().next_back();
        let indexes_expr = prev.is_some_and(|p| is_ident_char(p) || p == ')' || p == ']');
        if !indexes_expr {
            continue;
        }
        let inner_end = match code[i + 1..].find(']') {
            Some(e) => i + 1 + e,
            None => continue,
        };
        let inner = code[i + 1..inner_end].trim();
        if !inner.is_empty() && inner.chars().all(|c| c.is_ascii_digit() || c == '_') {
            out.push(i);
        }
    }
    out
}

// ---------------------------------------------------------------- L002

/// L002 determinism: modules feeding `equivalence_key` or product
/// output must not read iteration-order- or wall-clock-dependent state,
/// and must not format floats in run-to-run-unstable ways.
pub struct Determinism;

/// Default forbidden tokens when `lint.toml` does not override them.
const DETERMINISM_TOKENS: &[&str] = &[
    "HashMap",
    "HashSet",
    "SystemTime::now",
    "Instant::now",
    "RandomState",
];

impl Rule for Determinism {
    fn id(&self) -> &'static str {
        "L002"
    }
    fn name(&self) -> &'static str {
        "determinism"
    }
    fn describe(&self) -> &'static str {
        "no HashMap/HashSet, wall-clock reads, or unstable float formatting in product-producing modules"
    }
    fn check(&self, file: &ScannedFile, cfg: &Config, out: &mut Vec<Diagnostic>) {
        let configured = cfg.list("rules.L002", "tokens");
        let defaults: Vec<String> = DETERMINISM_TOKENS.iter().map(|s| s.to_string()).collect();
        let tokens: &[String] = if configured.is_empty() {
            &defaults
        } else {
            configured
        };
        for (line_no, code) in code_lines(file) {
            for tok in tokens {
                if !token_positions(code, tok).is_empty() {
                    out.push(finding(
                        self,
                        file,
                        line_no,
                        format!(
                            "`{tok}` is nondeterministic (iteration order or wall clock) in a module that feeds equivalence_key/product output — use BTreeMap/BTreeSet or plumb times through explicitly"
                        ),
                    ));
                }
            }
        }
        // Float-format check runs over the *string literals* the scanner
        // collected, because format strings are invisible in `code`.
        for (i, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for s in &line.strings {
                if let Some(spec) = unstable_float_format(s) {
                    out.push(finding(
                        self,
                        file,
                        i + 1,
                        format!(
                            "format spec `{spec}` (scientific or runtime-varying precision) can change product bytes between runs — use a fixed `{{:.N}}` precision"
                        ),
                    ));
                }
            }
        }
    }
}

/// Scans a format string for specs whose rendering varies with runtime
/// values: scientific notation (`{:e}`/`{:E}`) and argument-supplied
/// precision (`{:.*}`, `{:.1$}`, `{:.prec$}`). Returns the first such
/// spec.
fn unstable_float_format(s: &str) -> Option<String> {
    let mut chars = s.char_indices().peekable();
    while let Some((start, c)) = chars.next() {
        if c != '{' {
            continue;
        }
        if chars.peek().map(|&(_, c)| c) == Some('{') {
            chars.next(); // escaped `{{`
            continue;
        }
        let rest = &s[start + 1..];
        let Some(end) = rest.find('}') else { break };
        let spec = &rest[..end];
        if let Some(fmt) = spec.split_once(':').map(|(_, f)| f) {
            let scientific = fmt.ends_with('e') || fmt.ends_with('E');
            let runtime_precision = fmt.contains(".*")
                || (fmt.contains('.') && fmt[fmt.find('.').unwrap_or(0)..].contains('$'));
            if scientific || runtime_precision {
                return Some(format!("{{{spec}}}"));
            }
        }
    }
    None
}

// ---------------------------------------------------------------- L003

/// L003 cast-safety: raw `as u8/u16/u32/usize` silently truncates;
/// bit/nybble math must go through `v6census_addr::cast` helpers (which
/// `debug_assert` losslessness) or the lossless `uN::from`.
pub struct CastSafety;

const NARROWING_TYPES: &[&str] = &["u8", "u16", "u32", "usize"];

impl Rule for CastSafety {
    fn id(&self) -> &'static str {
        "L003"
    }
    fn name(&self) -> &'static str {
        "cast-safety"
    }
    fn describe(&self) -> &'static str {
        "no raw `as u8/u16/u32/usize` in bit/nybble math — use v6census_addr::cast::checked_* or uN::from"
    }
    fn check(&self, file: &ScannedFile, _cfg: &Config, out: &mut Vec<Diagnostic>) {
        for (line_no, code) in code_lines(file) {
            for at in token_positions(code, "as") {
                let after = code[at + 2..].trim_start();
                let Some(ty) = NARROWING_TYPES.iter().find(|t| {
                    after.starts_with(**t)
                        && after[t.len()..]
                            .chars()
                            .next()
                            .is_none_or(|c| !is_ident_char(c))
                }) else {
                    continue;
                };
                out.push(finding(
                    self,
                    file,
                    line_no,
                    format!(
                        "raw `as {ty}` can silently truncate — use cast::checked_{ty} (debug_asserts losslessness), `{ty}::from` for widening, or justify with an allow pragma"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------- L004

/// L004 error-taxonomy: a public fallible API must expose the crate's
/// typed error so callers can triage programmatically; `String` and
/// `Box<dyn Error>` erase the taxonomy.
pub struct ErrorTaxonomy;

impl Rule for ErrorTaxonomy {
    fn id(&self) -> &'static str {
        "L004"
    }
    fn name(&self) -> &'static str {
        "error-taxonomy"
    }
    fn describe(&self) -> &'static str {
        "public fn returning Result must use a typed error, not String or Box<dyn Error>"
    }
    fn check(&self, file: &ScannedFile, _cfg: &Config, out: &mut Vec<Diagnostic>) {
        let lines: Vec<(usize, &str)> = code_lines(file).collect();
        for (idx, &(line_no, code)) in lines.iter().enumerate() {
            let Some(fn_at) = pub_fn_position(code) else {
                continue;
            };
            // Join the signature until its body `{` or declaration `;`.
            let mut sig = code[fn_at..].to_string();
            let mut extra = 0usize;
            while !sig.contains('{') && !sig.contains(';') && extra < 24 {
                extra += 1;
                match lines.get(idx + extra) {
                    Some(&(_, next)) => {
                        sig.push(' ');
                        sig.push_str(next);
                    }
                    None => break,
                }
            }
            let sig = sig.split('{').next().unwrap_or(&sig);
            let Some(ret) = sig.split("->").nth(1) else {
                continue;
            };
            if let Some(err_ty) = stringly_error(ret) {
                out.push(finding(
                    self,
                    file,
                    line_no,
                    format!(
                        "public fn returns `Result<_, {err_ty}>` — use the crate's typed error so callers can triage variants"
                    ),
                ));
            }
        }
    }
}

/// The byte position of `fn` in a `pub fn` / `pub(crate) fn` /
/// `pub const fn` / `pub async fn` item line, if this line declares one.
fn pub_fn_position(code: &str) -> Option<usize> {
    for at in token_positions(code, "fn") {
        let before = code[..at].trim_end();
        // Everything between `pub` and `fn` must be visibility scope or
        // fn qualifiers; that rules out `pub struct S { f: fn() }` etc.
        let Some(p) = before.rfind("pub") else {
            continue;
        };
        let between = before[p + 3..].trim();
        // Strip a `(crate)` / `(super)` / `(in path)` visibility scope.
        let vis_stripped = if let Some(rest) = between.strip_prefix('(') {
            rest.split_once(')').map(|(_, r)| r.trim()).unwrap_or(rest)
        } else {
            between
        };
        let quals_ok = vis_stripped
            .split_whitespace()
            .all(|w| matches!(w, "const" | "async" | "unsafe" | "extern" | "\"C\""));
        if quals_ok {
            return Some(at);
        }
    }
    None
}

/// If `ret` is `Result<_, E>` with a stringly `E`, returns `E`.
fn stringly_error(ret: &str) -> Option<String> {
    let at = ret.find("Result<")?;
    let args = &ret[at + "Result<".len()..];
    // Split the generic args at top angle-bracket level.
    let mut depth = 0i32;
    let mut top_commas = Vec::new();
    let mut end = args.len();
    for (i, c) in args.char_indices() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' if depth == 0 => {
                end = i;
                break;
            }
            '>' | ')' | ']' => depth -= 1,
            ',' if depth == 0 => top_commas.push(i),
            _ => {}
        }
    }
    let err_ty = match top_commas.first() {
        Some(&comma) => args[comma + 1..end].trim(),
        None => return None, // one-arg Result alias — typed by definition
    };
    if err_ty == "String" || err_ty.starts_with("Box<dyn") {
        Some(err_ty.to_string())
    } else {
        None
    }
}

// ---------------------------------------------------------------- L005

/// L005 exit-codes: the CLI's exit-code contract (0 ok / 1 data /
/// 2 usage / 3 degraded) is enforced by requiring every `process::exit`
/// to name one of the documented constants.
pub struct ExitCodes;

/// Default allowed arguments when `lint.toml` does not override them.
const EXIT_IDENTS: &[&str] = &["EXIT_OK", "EXIT_DATA_ERROR", "EXIT_USAGE", "EXIT_DEGRADED"];

impl Rule for ExitCodes {
    fn id(&self) -> &'static str {
        "L005"
    }
    fn name(&self) -> &'static str {
        "exit-codes"
    }
    fn describe(&self) -> &'static str {
        "process::exit must use the documented EXIT_OK/EXIT_DATA_ERROR/EXIT_USAGE/EXIT_DEGRADED constants"
    }
    fn check(&self, file: &ScannedFile, cfg: &Config, out: &mut Vec<Diagnostic>) {
        let configured = cfg.list("rules.L005", "exit_idents");
        let defaults: Vec<String> = EXIT_IDENTS.iter().map(|s| s.to_string()).collect();
        let allowed: &[String] = if configured.is_empty() {
            &defaults
        } else {
            configured
        };
        for (line_no, code) in code_lines(file) {
            let mut from = 0;
            while let Some(i) = code[from..].find("process::exit(") {
                let at = from + i;
                let arg_start = at + "process::exit(".len();
                let arg = match code[arg_start..].find(')') {
                    Some(e) => code[arg_start..arg_start + e].trim(),
                    None => code[arg_start..].trim(),
                };
                // Accept qualified paths by their last segment.
                let last = arg.rsplit("::").next().unwrap_or(arg);
                if !allowed.iter().any(|a| a == last) {
                    out.push(finding(
                        self,
                        file,
                        line_no,
                        format!(
                            "`process::exit({arg})` bypasses the documented exit-code contract — use one of {}",
                            allowed.join("/")
                        ),
                    ));
                }
                from = arg_start;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;
    use std::path::PathBuf;

    fn check_one(rule: &dyn Rule, src: &str) -> Vec<Diagnostic> {
        let f = scan(PathBuf::from("t.rs"), "t.rs".into(), src);
        let mut out = Vec::new();
        rule.check(&f, &Config::default(), &mut out);
        out
    }

    #[test]
    fn l001_flags_panic_paths_not_lookalikes() {
        let bad = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"n\"); let z = v[0]; }\n";
        assert_eq!(check_one(&NoPanicPaths, bad).len(), 4);
        let ok = "fn f() { x.unwrap_or(0); y.unwrap_or_else(d); v.get(0); w[i]; m[i + 1]; }\n";
        assert!(check_one(&NoPanicPaths, ok).is_empty());
        let test_only = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        assert!(check_one(&NoPanicPaths, test_only).is_empty());
    }

    #[test]
    fn l001_ignores_array_types_and_attributes() {
        let ok =
            "fn f(a: [u8; 6]) -> [u8; 4] { let b: [u8; 2] = m; b }\n#[derive(Debug)]\nstruct S;\n";
        assert!(check_one(&NoPanicPaths, ok).is_empty());
    }

    #[test]
    fn l002_flags_hazards() {
        let bad = "fn f() { let m = HashMap::new(); let t = Instant::now(); }\n";
        assert_eq!(check_one(&Determinism, bad).len(), 2);
        let ok = "fn f() { let m = BTreeMap::new(); let h = MyHashMapLike::new(); }\n";
        assert!(check_one(&Determinism, ok).is_empty());
    }

    #[test]
    fn l002_flags_unstable_float_formats() {
        assert!(unstable_float_format("x {:e} y").is_some());
        assert!(unstable_float_format("{:.*}").is_some());
        assert!(unstable_float_format("{:.1$}").is_some());
        assert!(
            unstable_float_format("{:.3}").is_none(),
            "fixed precision is stable"
        );
        assert!(unstable_float_format("{{:e}} escaped").is_none());
        assert!(unstable_float_format("{:>8}").is_none());
    }

    #[test]
    fn l003_flags_narrowing_as() {
        let bad = "fn f(x: u64) { let a = x as u8; let b = x as usize; }\n";
        assert_eq!(check_one(&CastSafety, bad).len(), 2);
        let ok = "fn f(x: u8) { let a = u32::from(x); let b = x as u64; let c = x as f64; }\n";
        assert!(check_one(&CastSafety, ok).is_empty());
    }

    #[test]
    fn l004_flags_stringly_public_results() {
        let bad = "pub fn f() -> Result<(), String> { Ok(()) }\n";
        assert_eq!(check_one(&ErrorTaxonomy, bad).len(), 1);
        let boxed = "pub fn g(\n    x: u8,\n) -> Result<u8, Box<dyn std::error::Error>> {\n";
        assert_eq!(check_one(&ErrorTaxonomy, boxed).len(), 1);
        let ok = "pub fn f() -> Result<(), MyError> { Ok(()) }\nfn private() -> Result<(), String> { Ok(()) }\npub fn io() -> io::Result<()> { Ok(()) }\n";
        assert!(check_one(&ErrorTaxonomy, ok).is_empty());
    }

    #[test]
    fn l005_requires_named_constants() {
        let bad = "fn f() { std::process::exit(42); }\n";
        assert_eq!(check_one(&ExitCodes, bad).len(), 1);
        let ok =
            "fn f() { std::process::exit(EXIT_USAGE); process::exit(v6census_cli::EXIT_OK); }\n";
        assert!(check_one(&ExitCodes, ok).is_empty());
    }
}
