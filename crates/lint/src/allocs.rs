//! R005 alloc-in-hot-loop and R006 capacity-discipline: the
//! allocation-effect side of the performance proofs.
//!
//! The census hot paths — trie descent, aggregate counting, the ±7-day
//! stability window, nybble extraction — process one record per active
//! address, so a single per-item heap allocation multiplies into
//! hundreds of millions at paper scale (318M daily addresses in
//! Plonka & Berger's data). This pass turns "this loop allocates" into
//! a machine-checked obligation, the same proof-not-promise posture
//! R001–R004 established for panics, bit ranges, and locks.
//!
//! Every function gets an *allocation effect* on a three-point
//! lattice, `NoAlloc < AmortizedAlloc < AllocPerCall`:
//!
//! * `NoAlloc` — no allocating construct at all;
//! * `AmortizedAlloc` — allocation proportional to a one-time capacity
//!   reservation (`with_capacity`, `reserve`) or growth into an
//!   already-reserved buffer (`push`/`extend` — whether those are
//!   *actually* reserved is R006's separate obligation);
//! * `AllocPerCall` — an unconditional fresh allocation per invocation:
//!   `Vec::new`/`Box::new`/`String::new`-style constructors, `vec!` /
//!   `format!`, `.to_string()`, `.to_owned()`, `.to_vec()`,
//!   `.clone()`, `.collect()`.
//!
//! Direct effects are lifted over the call graph to a max-lattice
//! fixpoint exactly like R004's `may_block` bit, with `via` hops
//! recorded so findings can print the concrete allocation site.
//!
//! Loop scopes are tracked token-precisely: `for`/`while`/`loop`
//! bodies by brace matching, plus closure bodies passed to per-element
//! iterator adapters (`.map(|…| …)`, `.for_each`, `.filter`, `.fold`,
//! …). A closure bound to a `let` is *not* a loop scope — only one
//! syntactically passed to an adapter runs per element.
//!
//! **R005** walks the call graph from the `[hot] entry_points`
//! (default: every non-test function) and flags any `AllocPerCall`
//! construct or call inside a reachable loop scope, printing an
//! R001-style witness chain
//! `hot entry → … → loop @ file:line → allocation site`.
//!
//! **R006** is intraprocedural: a `Vec`/`String` grown inside a loop
//! (`push`/`push_str`/`extend`/`extend_from_slice`/`append`) must show
//! a dominating reservation before the growth site (`with_capacity`
//! assignment, `.reserve(…)`, or `.clear()`-and-reuse), be a `&mut`
//! out-param (the caller owns the reservation), or be a field of
//! `&mut self` (the structure owns its buffer across calls, e.g. an
//! arena). Everything else is an unreserved growth loop: a
//! reallocation storm at census scale.
//!
//! Both rules are scoped by `[hot] paths` in `lint.toml` (empty or
//! absent = everywhere, which is what the fixture tests rely on).

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::config::Config;
use crate::lexer::{TokKind, Token};
use crate::report::Diagnostic;
use crate::rules::{semantic_finding, SemanticRule, Workspace};

/// A function's allocation effect. `Ord` follows the lattice:
/// `NoAlloc < AmortizedAlloc < AllocPerCall`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AllocEffect {
    /// No allocating construct, directly or transitively.
    NoAlloc,
    /// Allocates only via capacity reservations or reserved growth.
    AmortizedAlloc,
    /// Performs an unconditional fresh allocation per invocation.
    AllocPerCall,
}

/// One direct allocating construct inside a function body.
#[derive(Clone, Debug)]
pub struct AllocSite {
    /// Original token index (for loop-scope containment).
    pub pos: usize,
    /// 1-based source line.
    pub line: usize,
    /// Human description, e.g. `Vec::new` or `.to_string()`.
    pub desc: String,
    /// What this site contributes to the lattice.
    pub effect: AllocEffect,
}

/// One loop scope inside a function body, as a token range.
#[derive(Clone, Debug)]
pub struct LoopScope {
    /// Token index of the opening `{` (keyword loops) or the closure's
    /// opening `|` (adapter loops); sites strictly inside count.
    pub open: usize,
    /// Token index of the matching `}` / the adapter call's `)`.
    pub close: usize,
    /// 1-based line of the loop keyword / adapter name.
    pub line: usize,
    /// `for` / `while` / `loop` or the adapter name (`map`, `fold`…).
    pub kind: String,
}

/// Per-workspace allocation-effect summaries.
pub struct AllocSummaries {
    /// `direct[fn]` = that fn's own allocating sites, in token order.
    pub direct: Vec<Vec<AllocSite>>,
    /// `effect[fn]` = the lifted lattice point (max over callees).
    pub effect: Vec<AllocEffect>,
    /// For lifted `AllocPerCall` bits: the call hop `(callee, line)`
    /// that introduced per-call allocation into a fn with no direct
    /// per-call site of its own.
    pub via: BTreeMap<usize, (usize, usize)>,
    /// `loops[fn]` = that fn's loop scopes, in token order.
    pub loops: Vec<Vec<LoopScope>>,
}

/// Counters for `BENCH_lint.json`'s `allocs` block and the self-check.
#[derive(Clone, Debug, Default)]
pub struct AllocStats {
    /// Non-test functions with bodies that received a summary.
    pub fns_summarized: usize,
    /// Of those, how many land on each lattice point (post-lift).
    pub no_alloc_fns: usize,
    /// Functions whose effect lifted to `AmortizedAlloc`.
    pub amortized_fns: usize,
    /// Functions whose effect lifted to `AllocPerCall`.
    pub per_call_fns: usize,
    /// Resolved `[hot]` entry-point functions.
    pub hot_entry_points: usize,
    /// Loop scopes found across all summarized functions.
    pub loops_scanned: usize,
    /// R005: sites/calls examined inside hot-reachable loops, and how
    /// many were proven allocation-free per iteration.
    pub hot_loop_obligations: usize,
    /// Of the R005 obligations, how many were proven per-iteration free.
    pub hot_loop_proven: usize,
    /// R006: growth sites examined inside loops, and how many showed a
    /// dominating reservation / out-param discipline.
    pub capacity_obligations: usize,
    /// Of the R006 obligations, how many carried a reservation proof.
    pub capacity_proven: usize,
}

/// The result of the shared R005+R006 pass.
pub struct AllocAnalysis {
    /// R005 alloc-in-hot-loop findings.
    pub hot_findings: Vec<Diagnostic>,
    /// R006 capacity-discipline findings.
    pub capacity_findings: Vec<Diagnostic>,
    /// Summaries (exposed for the bench and for tests).
    pub summaries: AllocSummaries,
    /// Counters for the bench's `allocs` block and the self-check.
    pub stats: AllocStats,
}

/// Allocating constructors in path form `Type::method(` — each is an
/// unconditional fresh allocation (or, for `Vec::new`, the root of an
/// unreserved growth buffer, which costs the same by the first push).
const PER_CALL_CTORS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "from"),
    ("VecDeque", "new"),
    ("String", "new"),
    ("String", "from"),
    ("Box", "new"),
    ("BTreeMap", "new"),
    ("BTreeSet", "new"),
    ("HashMap", "new"),
    ("HashSet", "new"),
];

/// Allocating method calls `.name(` — fresh allocation per call.
const PER_CALL_METHODS: &[&str] = &["to_string", "to_owned", "to_vec", "clone", "collect"];

/// Allocating macros `name!` — each expansion allocates.
const PER_CALL_MACROS: &[&str] = &["vec", "format"];

/// Capacity-reserving calls — `AmortizedAlloc`.
const RESERVE_METHODS: &[&str] = &["reserve", "reserve_exact"];

/// Growth methods — `AmortizedAlloc` on the effect lattice (R006 owns
/// the question of whether the buffer was actually reserved).
const GROW_METHODS: &[&str] = &["push", "push_str", "extend", "extend_from_slice", "append"];

/// Iterator adapters whose closure argument runs once per element:
/// a closure body passed to one of these is a loop scope.
const ADAPTER_LOOPS: &[&str] = &[
    "map",
    "for_each",
    "filter",
    "filter_map",
    "flat_map",
    "fold",
    "retain",
    "retain_mut",
    "any",
    "all",
    "find",
    "find_map",
    "position",
    "take_while",
    "skip_while",
    "map_while",
    "scan",
    "inspect",
    "partition",
    "max_by_key",
    "min_by_key",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// True when `rel` is inside the `[hot] paths` scope (empty or absent
/// section = everywhere, mirroring `Config::rule_applies`).
pub fn hot_scope_applies(cfg: &Config, rel: &str) -> bool {
    let paths = cfg.list("hot", "paths");
    paths.is_empty() || paths.iter().any(|p| rel.starts_with(p.as_str()))
}

/// True when a method-call expression (`.push`, `.clone`, …) is one
/// the direct-site classifier owns. The call graph over-approximates
/// method calls to every same-name workspace method, so `.push(` on a
/// `Vec` would otherwise pick up the allocation effect of an unrelated
/// workspace `push` — for these names the std-container semantics in
/// the site tables is the model, and the call edge is noise.
fn classifier_owned(expr: &str) -> bool {
    expr.strip_prefix('.').is_some_and(|n| {
        PER_CALL_METHODS.contains(&n)
            || RESERVE_METHODS.contains(&n)
            || GROW_METHODS.contains(&n)
            || n == "with_capacity"
    })
}

/// The shared pass: summarize every function, then run both rules.
pub fn analyze(ws: &Workspace<'_>, cfg: &Config) -> AllocAnalysis {
    let summaries = summarize(ws);
    let mut stats = AllocStats::default();
    for (id, f) in ws.symbols.fns.iter().enumerate() {
        if f.is_test || f.body.is_none() {
            continue;
        }
        stats.fns_summarized += 1;
        stats.loops_scanned += summaries.loops.get(id).map(Vec::len).unwrap_or(0);
        match summaries.effect.get(id) {
            Some(AllocEffect::NoAlloc) => stats.no_alloc_fns += 1,
            Some(AllocEffect::AmortizedAlloc) => stats.amortized_fns += 1,
            Some(AllocEffect::AllocPerCall) => stats.per_call_fns += 1,
            None => {}
        }
    }
    let hot_findings = hot_loop_check(ws, cfg, &summaries, &mut stats);
    let capacity_findings = capacity_check(ws, &summaries, &mut stats);
    AllocAnalysis {
        hot_findings,
        capacity_findings,
        summaries,
        stats,
    }
}

/// Scans every function body for direct allocating sites and loop
/// scopes, then lifts the effects over the call graph to a max-lattice
/// fixpoint (mirroring [`crate::effects::summarize`]).
pub fn summarize(ws: &Workspace<'_>) -> AllocSummaries {
    let n = ws.symbols.fns.len();
    let mut direct: Vec<Vec<AllocSite>> = vec![Vec::new(); n];
    let mut loops: Vec<Vec<LoopScope>> = vec![Vec::new(); n];
    for (id, f) in ws.symbols.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let Some((start, end)) = f.body else { continue };
        let Some(file) = ws.files.get(f.file) else {
            continue;
        };
        let body = body_tokens(&file.tokens, start, end);
        direct[id] = direct_sites(&body);
        loops[id] = loop_scopes(&body);
    }

    let mut effect: Vec<AllocEffect> = direct
        .iter()
        .map(|d| {
            d.iter()
                .map(|s| s.effect)
                .max()
                .unwrap_or(AllocEffect::NoAlloc)
        })
        .collect();
    let mut via: BTreeMap<usize, (usize, usize)> = BTreeMap::new();
    let mut changed = true;
    let mut rounds = 0usize;
    while changed && rounds <= n {
        changed = false;
        rounds += 1;
        for id in 0..n {
            if effect.get(id) == Some(&AllocEffect::AllocPerCall)
                || ws.symbols.fns.get(id).is_some_and(|f| f.is_test)
            {
                continue;
            }
            for call in ws.calls.calls.get(id).map(Vec::as_slice).unwrap_or(&[]) {
                if classifier_owned(&call.expr) {
                    continue;
                }
                let best = call
                    .callees
                    .iter()
                    .filter(|&&c| ws.symbols.fns.get(c).is_some_and(|f| !f.is_test))
                    .map(|&c| (effect.get(c).copied().unwrap_or(AllocEffect::NoAlloc), c))
                    .max();
                let Some((ce, callee)) = best else { continue };
                if ce > effect.get(id).copied().unwrap_or(AllocEffect::NoAlloc) {
                    if let Some(slot) = effect.get_mut(id) {
                        *slot = ce;
                    }
                    if ce == AllocEffect::AllocPerCall {
                        via.insert(id, (callee, call.line));
                    }
                    changed = true;
                }
                if effect.get(id) == Some(&AllocEffect::AllocPerCall) {
                    break;
                }
            }
        }
    }
    AllocSummaries {
        direct,
        effect,
        via,
        loops,
    }
}

/// The body's non-comment tokens, with original indices preserved.
fn body_tokens(tokens: &[Token], start: usize, end: usize) -> Vec<(usize, &Token)> {
    tokens
        .iter()
        .enumerate()
        .filter(|(o, t)| {
            (start..end).contains(o)
                && !matches!(
                    t.kind,
                    TokKind::LineComment { .. } | TokKind::BlockComment { .. }
                )
        })
        .collect()
}

/// Token walk over one body collecting direct allocating sites.
fn direct_sites(toks: &[(usize, &Token)]) -> Vec<AllocSite> {
    let mut out = Vec::new();
    for j in 0..toks.len() {
        let Some(&(orig, t)) = toks.get(j) else {
            continue;
        };
        // Allocating macro: `vec !` / `format !`.
        if t.kind == TokKind::Ident
            && PER_CALL_MACROS.iter().any(|m| t.is_ident(m))
            && toks.get(j + 1).is_some_and(|&(_, x)| x.is_op("!"))
        {
            out.push(AllocSite {
                pos: orig,
                line: t.line,
                desc: format!("{}!", t.text),
                effect: AllocEffect::AllocPerCall,
            });
            continue;
        }
        if !t.is_op("(") || j < 2 {
            continue;
        }
        let Some(&(mpos, m)) = toks.get(j - 1) else {
            continue;
        };
        if m.kind != TokKind::Ident {
            continue;
        }
        let dotted = toks
            .get(j.wrapping_sub(2))
            .is_some_and(|&(_, x)| x.is_op("."));
        let pathed = toks
            .get(j.wrapping_sub(2))
            .is_some_and(|&(_, x)| x.is_op("::"));
        // `Type :: method (` — allocating constructors, with_capacity.
        if pathed {
            let ty = toks.get(j.wrapping_sub(3)).map(|&(_, x)| x.text.as_str());
            if let Some(ty) = ty {
                if PER_CALL_CTORS
                    .iter()
                    .any(|&(t0, m0)| ty == t0 && m.is_ident(m0))
                {
                    out.push(AllocSite {
                        pos: mpos,
                        line: m.line,
                        desc: format!("{ty}::{}", m.text),
                        effect: AllocEffect::AllocPerCall,
                    });
                    continue;
                }
            }
            if m.is_ident("with_capacity") {
                out.push(AllocSite {
                    pos: mpos,
                    line: m.line,
                    desc: "with_capacity".into(),
                    effect: AllocEffect::AmortizedAlloc,
                });
                continue;
            }
        }
        if !dotted {
            continue;
        }
        // `.method (` — per-call copies, reservations, growth.
        if PER_CALL_METHODS.iter().any(|n| m.is_ident(n)) {
            out.push(AllocSite {
                pos: mpos,
                line: m.line,
                desc: format!(".{}()", m.text),
                effect: AllocEffect::AllocPerCall,
            });
        } else if RESERVE_METHODS
            .iter()
            .chain(GROW_METHODS)
            .any(|n| m.is_ident(n))
        {
            // Reservations and (presumed-reserved) growth both land on
            // the amortized point; R006 separately audits the growth
            // sites for an actual dominating reservation.
            out.push(AllocSite {
                pos: mpos,
                line: m.line,
                desc: format!(".{}()", m.text),
                effect: AllocEffect::AmortizedAlloc,
            });
        }
    }
    out
}

/// Token walk over one body collecting loop scopes: keyword loops by
/// brace matching, iterator-adapter closures by paren matching.
fn loop_scopes(toks: &[(usize, &Token)]) -> Vec<LoopScope> {
    let mut out = Vec::new();
    for j in 0..toks.len() {
        let Some(&(_, t)) = toks.get(j) else { continue };
        if t.kind == TokKind::Ident
            && (t.is_ident("for") || t.is_ident("while") || t.is_ident("loop"))
        {
            // `for<'a>` in a higher-ranked bound is not a loop.
            if toks.get(j + 1).is_some_and(|&(_, x)| x.is_op("<")) {
                continue;
            }
            if let Some((open, close, _)) = keyword_loop_body(toks, j) {
                out.push(LoopScope {
                    open,
                    close,
                    line: t.line,
                    kind: t.text.clone(),
                });
            }
            continue;
        }
        // `. adapter ( … |closure| … )` — per-element closure scope.
        if t.is_op(".")
            && toks
                .get(j + 1)
                .is_some_and(|&(_, x)| ADAPTER_LOOPS.iter().any(|a| x.is_ident(a)))
            && toks.get(j + 2).is_some_and(|&(_, x)| x.is_op("("))
        {
            let Some(&(_, name)) = toks.get(j + 1) else {
                continue;
            };
            if let Some((open, close)) = adapter_closure_scope(toks, j + 2) {
                out.push(LoopScope {
                    open,
                    close,
                    line: name.line,
                    kind: name.text.clone(),
                });
            }
        }
    }
    out
}

/// From a loop keyword at `kw`, finds the body's `{ … }` token range:
/// the first `{` outside parens/brackets before a `;`, then its
/// matching `}`. Returns original token indices `(open, close, ok)`.
fn keyword_loop_body(toks: &[(usize, &Token)], kw: usize) -> Option<(usize, usize, usize)> {
    let mut depth = 0i32;
    let mut j = kw + 1;
    let open_at = loop {
        let &(_, t) = toks.get(j)?;
        if t.is_op("(") || t.is_op("[") {
            depth += 1;
        } else if t.is_op(")") || t.is_op("]") {
            depth -= 1;
        } else if t.is_op(";") && depth <= 0 {
            return None;
        } else if t.is_op("{") && depth <= 0 {
            break j;
        }
        j += 1;
    };
    let mut braces = 0i32;
    let mut k = open_at;
    loop {
        let &(orig, t) = toks.get(k)?;
        if t.is_op("{") {
            braces += 1;
        } else if t.is_op("}") {
            braces -= 1;
            if braces == 0 {
                let &(open_orig, _) = toks.get(open_at)?;
                return Some((open_orig, orig, k));
            }
        }
        k += 1;
    }
}

/// From an adapter's `(` at `open_paren`, finds the closure scope:
/// the first `|` directly inside the call (paren depth 1) through the
/// call's matching `)`. `fold(init, |acc, x| …)` starts at the `|`, so
/// the once-per-call init expression is outside the scope. Returns
/// `None` when no closure is passed (e.g. `.map(f)`).
fn adapter_closure_scope(toks: &[(usize, &Token)], open_paren: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut pipe: Option<usize> = None;
    let mut k = open_paren;
    loop {
        let &(orig, t) = toks.get(k)?;
        if t.is_op("(") || t.is_op("[") || t.is_op("{") {
            depth += 1;
        } else if t.is_op(")") || t.is_op("]") || t.is_op("}") {
            depth -= 1;
            if depth == 0 {
                return pipe.map(|p| (p, orig));
            }
        } else if t.is_op("|") && depth == 1 && pipe.is_none() {
            pipe = Some(orig);
        }
        k += 1;
    }
}

/// R005: BFS the call graph from the `[hot] entry_points` and flag
/// per-call allocation inside any reachable loop scope.
fn hot_loop_check(
    ws: &Workspace<'_>,
    cfg: &Config,
    sums: &AllocSummaries,
    stats: &mut AllocStats,
) -> Vec<Diagnostic> {
    // Entry points: configured suffixes, or every non-test fn when the
    // section is absent (fixture tests run config-free).
    let configured = cfg.list("hot", "entry_points");
    let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let seed =
        |id: usize, parent: &mut BTreeMap<usize, Option<usize>>, queue: &mut VecDeque<usize>| {
            if ws.symbols.fns.get(id).is_some_and(|f| f.is_test) {
                return;
            }
            if let Entry::Vacant(slot) = parent.entry(id) {
                slot.insert(None);
                queue.push_back(id);
            }
        };
    if configured.is_empty() {
        for id in 0..ws.symbols.fns.len() {
            seed(id, &mut parent, &mut queue);
        }
    } else {
        for entry in configured {
            for id in ws.symbols.find_by_suffix(entry) {
                seed(id, &mut parent, &mut queue);
            }
        }
    }
    stats.hot_entry_points = queue.len();
    while let Some(cur) = queue.pop_front() {
        for (callee, _line, _expr) in ws.calls.edges(cur) {
            if parent.contains_key(&callee) || ws.symbols.fns.get(callee).is_some_and(|f| f.is_test)
            {
                continue;
            }
            parent.insert(callee, Some(cur));
            queue.push_back(callee);
        }
    }

    let mut out = Vec::new();
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (&id, _) in parent.iter() {
        let Some(f) = ws.symbols.fns.get(id) else {
            continue;
        };
        let Some(file) = ws.files.get(f.file) else {
            continue;
        };
        for lp in sums.loops.get(id).map(Vec::as_slice).unwrap_or(&[]) {
            // Obligation 1: no direct per-call construct in the loop.
            for site in sums.direct.get(id).into_iter().flatten() {
                if site.pos <= lp.open || site.pos >= lp.close {
                    continue;
                }
                stats.hot_loop_obligations += 1;
                if site.effect != AllocEffect::AllocPerCall {
                    stats.hot_loop_proven += 1;
                    continue;
                }
                if !seen.insert((id, site.pos)) {
                    continue;
                }
                out.push(semantic_finding(
                    "R005",
                    "alloc-in-hot-loop",
                    file,
                    site.line,
                    format!(
                        "`{}` allocates on every iteration of this hot `{}` loop (line {}) — hoist the buffer or reserve once outside",
                        site.desc, lp.kind, lp.line
                    ),
                    Some(format!(
                        "{} → loop @ {}:{} → {} ({}:{})",
                        build_chain(ws, &parent, id),
                        file.rel,
                        lp.line,
                        site.desc,
                        file.rel,
                        site.line
                    )),
                ));
            }
            // Obligation 2: no call in the loop reaches AllocPerCall.
            for call in ws.calls.calls.get(id).map(Vec::as_slice).unwrap_or(&[]) {
                if call.paren <= lp.open || call.paren >= lp.close || classifier_owned(&call.expr) {
                    continue;
                }
                let workspace_callees: Vec<usize> = call
                    .callees
                    .iter()
                    .copied()
                    .filter(|&c| ws.symbols.fns.get(c).is_some_and(|x| !x.is_test))
                    .collect();
                if workspace_callees.is_empty() {
                    continue; // foreign call: the direct-site scan owns it
                }
                stats.hot_loop_obligations += 1;
                let allocator = workspace_callees
                    .iter()
                    .copied()
                    .find(|&c| sums.effect.get(c) == Some(&AllocEffect::AllocPerCall));
                let Some(allocator) = allocator else {
                    stats.hot_loop_proven += 1;
                    continue;
                };
                if !seen.insert((id, call.paren)) {
                    continue;
                }
                let (path, leaf) = alloc_path(ws, sums, allocator);
                out.push(semantic_finding(
                    "R005",
                    "alloc-in-hot-loop",
                    file,
                    call.line,
                    format!(
                        "call `{}` allocates on every iteration of this hot `{}` loop (line {}) — via {leaf}; hoist or make the callee allocation-free",
                        call.expr, lp.kind, lp.line
                    ),
                    Some(format!(
                        "{} → loop @ {}:{} → {path}",
                        build_chain(ws, &parent, id),
                        file.rel,
                        lp.line
                    )),
                ));
            }
        }
    }
    out
}

/// Renders `callee → … → concrete allocation site` following `via`
/// hops (mirrors `effects::blocking_path`).
fn alloc_path(ws: &Workspace<'_>, sums: &AllocSummaries, mut id: usize) -> (String, String) {
    let mut hops: Vec<String> = Vec::new();
    for _ in 0..ws.symbols.fns.len() + 1 {
        let name = ws
            .symbols
            .fns
            .get(id)
            .map(|f| f.qname.clone())
            .unwrap_or_default();
        hops.push(name);
        let site = sums
            .direct
            .get(id)
            .and_then(|d| d.iter().find(|s| s.effect == AllocEffect::AllocPerCall));
        if let Some(site) = site {
            let rel = ws
                .symbols
                .fns
                .get(id)
                .and_then(|f| ws.files.get(f.file))
                .map(|x| x.rel.as_str())
                .unwrap_or("");
            let leaf = site.desc.clone();
            hops.push(format!("{} ({rel}:{})", site.desc, site.line));
            return (hops.join(" → "), leaf);
        }
        match sums.via.get(&id) {
            Some(&(next, _)) => id = next,
            None => break,
        }
    }
    (hops.join(" → "), "per-call allocation".into())
}

/// Renders the `entry → … → fn` chain by walking BFS parent pointers.
fn build_chain(
    ws: &Workspace<'_>,
    parent: &BTreeMap<usize, Option<usize>>,
    mut fn_id: usize,
) -> String {
    let mut names: Vec<String> = Vec::new();
    for _ in 0..ws.symbols.fns.len() + 1 {
        let name = ws
            .symbols
            .fns
            .get(fn_id)
            .map(|f| f.qname.clone())
            .unwrap_or_default();
        names.push(name);
        match parent.get(&fn_id) {
            Some(Some(up)) => fn_id = *up,
            _ => break,
        }
    }
    names.reverse();
    names.join(" → ")
}

/// R006: every `Vec`/`String` grown inside a loop must show a
/// dominating reservation, be a `&mut` out-param, or be `&mut self`
/// state. Intraprocedural by design — the obligation names the one
/// function that must hold the discipline.
fn capacity_check(
    ws: &Workspace<'_>,
    sums: &AllocSummaries,
    stats: &mut AllocStats,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (id, f) in ws.symbols.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let Some((start, end)) = f.body else { continue };
        let Some(file) = ws.files.get(f.file) else {
            continue;
        };
        let body = body_tokens(&file.tokens, start, end);
        let sig = signature_tokens(&file.tokens, start);
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        for lp in sums.loops.get(id).map(Vec::as_slice).unwrap_or(&[]) {
            for j in 0..body.len() {
                let Some(&(orig, t)) = body.get(j) else {
                    continue;
                };
                if orig <= lp.open || orig >= lp.close {
                    continue;
                }
                if t.kind != TokKind::Ident || !GROW_METHODS.iter().any(|n| t.is_ident(n)) {
                    continue;
                }
                if !body.get(j + 1).is_some_and(|&(_, x)| x.is_op("(")) {
                    continue;
                }
                if !body
                    .get(j.wrapping_sub(1))
                    .is_some_and(|&(_, x)| x.is_op("."))
                {
                    continue;
                }
                let Some(&(_, recv)) = body.get(j.wrapping_sub(2)) else {
                    continue;
                };
                if recv.kind != TokKind::Ident {
                    continue; // chained/indexed receiver: out of scope
                }
                let on_self_field = body
                    .get(j.wrapping_sub(3))
                    .is_some_and(|&(_, x)| x.is_op("."))
                    && body
                        .get(j.wrapping_sub(4))
                        .is_some_and(|&(_, x)| x.is_ident("self"));
                if recv.is_ident("self") {
                    continue; // `self.extend(…)` — the type owns growth
                }
                if !seen.insert(orig) {
                    continue;
                }
                stats.capacity_obligations += 1;
                let proven = if on_self_field {
                    // `&mut self` state: the buffer outlives the call
                    // and its reservation is the constructor's job.
                    sig.iter().any(|&(_, x)| x.is_ident("self"))
                } else {
                    dominating_reservation(&body, j, &recv.text) || mut_out_param(&sig, &recv.text)
                };
                if proven {
                    stats.capacity_proven += 1;
                    continue;
                }
                out.push(semantic_finding(
                    "R006",
                    "capacity-discipline",
                    file,
                    t.line,
                    format!(
                        "`{}` grows via `.{}()` inside a `{}` loop (line {}) with no dominating `with_capacity`/`reserve`, `clear()`-reuse, or `&mut` out-param — unreserved growth reallocates O(log n) times",
                        recv.text, t.text, lp.kind, lp.line
                    ),
                    None,
                ));
            }
        }
    }
    out
}

/// True when a reservation for `recv` dominates the growth site at
/// body index `site`: an earlier `recv.reserve(…)` / `recv.clear(…)`,
/// or an earlier statement binding/assigning `recv` that mentions
/// `with_capacity` before its `;`.
fn dominating_reservation(body: &[(usize, &Token)], site: usize, recv: &str) -> bool {
    for j in 0..site.saturating_sub(2) {
        let Some(&(_, t)) = body.get(j) else { continue };
        if t.kind != TokKind::Ident || !t.is_ident(recv) {
            continue;
        }
        if body.get(j + 1).is_some_and(|&(_, x)| x.is_op(".")) {
            let is_reserve = body.get(j + 2).is_some_and(|&(_, x)| {
                RESERVE_METHODS.iter().any(|n| x.is_ident(n)) || x.is_ident("clear")
            });
            if is_reserve {
                return true;
            }
        }
        // `recv = … with_capacity(…) …;` (also covers `let mut recv`).
        let mut k = j + 1;
        let mut saw_eq = false;
        while let Some(&(_, x)) = body.get(k) {
            if x.is_op(";") || k > j + 40 {
                break;
            }
            if x.is_op("=") {
                saw_eq = true;
            }
            if saw_eq && x.is_ident("with_capacity") {
                return true;
            }
            k += 1;
        }
    }
    false
}

/// True when `recv` is declared `recv: &[lifetime] mut …` in the
/// signature — a caller-owned out-param.
fn mut_out_param(sig: &[(usize, &Token)], recv: &str) -> bool {
    for j in 0..sig.len() {
        let Some(&(_, t)) = sig.get(j) else { continue };
        if t.kind != TokKind::Ident || !t.is_ident(recv) {
            continue;
        }
        if !sig.get(j + 1).is_some_and(|&(_, x)| x.is_op(":")) {
            continue;
        }
        if !sig.get(j + 2).is_some_and(|&(_, x)| x.is_op("&")) {
            continue;
        }
        let mut_near = (3..=4).any(|d| sig.get(j + d).is_some_and(|&(_, x)| x.is_ident("mut")));
        if mut_near {
            return true;
        }
    }
    false
}

/// The tokens of the function signature: backwards from the body's
/// opening brace to the nearest `fn` keyword.
fn signature_tokens(tokens: &[Token], body_start: usize) -> Vec<(usize, &Token)> {
    let mut fn_at = None;
    let lo = body_start.saturating_sub(120);
    for j in (lo..body_start).rev() {
        if tokens.get(j).is_some_and(|t| t.is_ident("fn")) {
            fn_at = Some(j);
            break;
        }
    }
    let Some(fn_at) = fn_at else {
        return Vec::new();
    };
    tokens
        .iter()
        .enumerate()
        .filter(|(o, t)| {
            (fn_at..body_start).contains(o)
                && !matches!(
                    t.kind,
                    TokKind::LineComment { .. } | TokKind::BlockComment { .. }
                )
        })
        .collect()
}

// ---------------------------------------------------------------- R005

/// R005 alloc-in-hot-loop as a registered semantic rule. The engine
/// runs the shared [`analyze`] pass once for R005+R006; this impl
/// exists for `--list-rules` and direct tests.
pub struct AllocInHotLoop;

impl SemanticRule for AllocInHotLoop {
    fn id(&self) -> &'static str {
        "R005"
    }
    fn name(&self) -> &'static str {
        "alloc-in-hot-loop"
    }
    fn describe(&self) -> &'static str {
        "no per-call allocation (construct or callee) inside a loop reachable from a [hot] entry point"
    }
    fn check(&self, ws: &Workspace<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
        out.extend(analyze(ws, cfg).hot_findings);
    }
}

// ---------------------------------------------------------------- R006

/// R006 capacity-discipline as a registered semantic rule.
pub struct CapacityDiscipline;

impl SemanticRule for CapacityDiscipline {
    fn id(&self) -> &'static str {
        "R006"
    }
    fn name(&self) -> &'static str {
        "capacity-discipline"
    }
    fn describe(&self) -> &'static str {
        "a Vec/String grown in a loop must have a dominating with_capacity/reserve, clear()-reuse, or be a &mut out-param"
    }
    fn check(&self, ws: &Workspace<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
        out.extend(analyze(ws, cfg).capacity_findings);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::scan::scan;
    use crate::symbols::SymbolTable;
    use std::path::PathBuf;

    fn run(src: &str) -> (AllocAnalysis, Vec<String>) {
        let scanned = vec![scan(
            PathBuf::from("crates/x/src/lib.rs"),
            "crates/x/src/lib.rs".into(),
            src,
        )];
        let symbols = SymbolTable::build(&scanned);
        let calls = CallGraph::build(&symbols, &scanned);
        let ws = Workspace {
            files: &scanned,
            symbols: &symbols,
            calls: &calls,
        };
        let a = analyze(&ws, &Config::default());
        let qnames = symbols.fns.iter().map(|f| f.qname.clone()).collect();
        (a, qnames)
    }

    #[test]
    fn lattice_classification() {
        let (a, names) = run("\
fn pure(x: u32) -> u32 { x.wrapping_add(1) }
fn amortized(n: usize) -> Vec<u32> {
    let mut v = Vec::with_capacity(n);
    v.push(1);
    v
}
fn per_call() -> Vec<u32> {
    let v = Vec::new();
    v
}
");
        let eff = |suffix: &str| {
            let id = names
                .iter()
                .position(|q| q.ends_with(suffix))
                .expect(suffix);
            a.summaries.effect[id]
        };
        assert_eq!(eff("::pure"), AllocEffect::NoAlloc);
        assert_eq!(eff("::amortized"), AllocEffect::AmortizedAlloc);
        assert_eq!(eff("::per_call"), AllocEffect::AllocPerCall);
        assert_eq!(a.stats.no_alloc_fns, 1);
        assert_eq!(a.stats.amortized_fns, 1);
        assert_eq!(a.stats.per_call_fns, 1);
    }

    #[test]
    fn direct_alloc_in_loop_is_flagged_with_chain() {
        let (a, _) = run("\
fn hot(xs: &[u32]) -> u32 {
    let mut acc = 0u32;
    for x in xs {
        let label = format!(\"{x}\");
        acc = acc.wrapping_add(label.len() as u32);
    }
    acc
}
");
        assert_eq!(a.hot_findings.len(), 1, "{:?}", a.hot_findings);
        let d = &a.hot_findings[0];
        assert_eq!(d.rule, "R005");
        let chain = d.chain.as_deref().unwrap_or("");
        assert!(chain.contains("x::hot"), "{chain}");
        assert!(chain.contains("loop @ crates/x/src/lib.rs:3"), "{chain}");
        assert!(chain.contains("format!"), "{chain}");
    }

    #[test]
    fn transitive_alloc_through_two_hops_is_flagged() {
        let (a, _) = run("\
fn leaf() -> String { String::new() }
fn mid() -> usize { leaf().len() }
fn hot(n: usize) -> usize {
    let mut acc = 0usize;
    let mut i = 0usize;
    while i < n {
        acc = acc.saturating_add(mid());
        i = i.saturating_add(1);
    }
    acc
}
");
        let ours: Vec<_> = a
            .hot_findings
            .iter()
            .filter(|d| d.message.contains("mid"))
            .collect();
        assert_eq!(ours.len(), 1, "{:?}", a.hot_findings);
        let chain = ours[0].chain.as_deref().unwrap_or("");
        assert!(chain.contains("x::hot"), "{chain}");
        assert!(chain.contains("x::mid"), "{chain}");
        assert!(chain.contains("x::leaf"), "{chain}");
        assert!(chain.contains("String::new"), "{chain}");
    }

    #[test]
    fn adapter_closure_is_a_loop_scope_but_let_closure_is_not() {
        let (a, _) = run("\
fn adapter(xs: &[u32]) -> usize {
    xs.iter().map(|x| x.to_string()).count()
}
fn bound(x: u32) -> String {
    let f = |v: u32| v.to_string();
    f(x)
}
");
        assert_eq!(a.hot_findings.len(), 1, "{:?}", a.hot_findings);
        assert!(a.hot_findings[0].message.contains("to_string"));
        assert_eq!(a.hot_findings[0].rel, "crates/x/src/lib.rs");
    }

    #[test]
    fn fold_init_is_outside_the_closure_scope() {
        let (a, _) = run("\
fn folds(xs: &[u32]) -> Vec<u32> {
    xs.iter().fold(Vec::with_capacity(xs.len()), |mut acc, &x| {
        acc.push(x);
        acc
    })
}
");
        assert!(a.hot_findings.is_empty(), "{:?}", a.hot_findings);
    }

    #[test]
    fn reuse_buffer_pattern_is_clean() {
        let (a, _) = run("\
fn hot(batches: &[&[u32]]) -> usize {
    let mut buf: Vec<u32> = Vec::with_capacity(64);
    let mut total = 0usize;
    for b in batches {
        buf.clear();
        buf.extend_from_slice(b);
        total = total.saturating_add(buf.len());
    }
    total
}
");
        assert!(a.hot_findings.is_empty(), "{:?}", a.hot_findings);
        assert!(a.capacity_findings.is_empty(), "{:?}", a.capacity_findings);
        assert!(a.stats.hot_loop_proven >= 1);
    }

    #[test]
    fn unreserved_push_loop_is_r006() {
        let (a, _) = run("\
fn grow(xs: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    for &x in xs {
        out.push(x);
    }
    out
}
");
        assert_eq!(a.capacity_findings.len(), 1, "{:?}", a.capacity_findings);
        assert_eq!(a.capacity_findings[0].rule, "R006");
        assert!(a.capacity_findings[0].message.contains("`out`"));
    }

    #[test]
    fn with_capacity_and_out_param_satisfy_r006() {
        let (a, _) = run("\
fn reserved(xs: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(xs.len());
    for &x in xs {
        out.push(x);
    }
    out
}
fn out_param(xs: &[u32], out: &mut Vec<u32>) {
    for &x in xs {
        out.push(x);
    }
}
");
        assert!(a.capacity_findings.is_empty(), "{:?}", a.capacity_findings);
        assert_eq!(a.stats.capacity_proven, 2);
    }

    #[test]
    fn self_field_growth_needs_mut_self() {
        let (a, _) = run("\
struct Arena { nodes: Vec<u32> }
impl Arena {
    fn fill(&mut self, xs: &[u32]) {
        for &x in xs {
            self.nodes.push(x);
        }
    }
}
");
        assert!(a.capacity_findings.is_empty(), "{:?}", a.capacity_findings);
    }

    #[test]
    fn hot_entry_points_restrict_the_bfs() {
        let cfg = Config::parse("[hot]\nentry_points = [\"x::hot\"]\n").expect("parses");
        let scanned = vec![scan(
            PathBuf::from("crates/x/src/lib.rs"),
            "crates/x/src/lib.rs".into(),
            "\
fn cold(xs: &[u32]) -> usize {
    let mut n = 0usize;
    for x in xs {
        n = n.saturating_add(x.to_string().len());
    }
    n
}
fn hot(xs: &[u32]) -> usize {
    let mut n = 0usize;
    for x in xs {
        n = n.saturating_add(*x as usize);
    }
    n
}
",
        )];
        let symbols = SymbolTable::build(&scanned);
        let calls = CallGraph::build(&symbols, &scanned);
        let ws = Workspace {
            files: &scanned,
            symbols: &symbols,
            calls: &calls,
        };
        let a = analyze(&ws, &cfg);
        assert_eq!(a.stats.hot_entry_points, 1);
        assert!(a.hot_findings.is_empty(), "{:?}", a.hot_findings);
    }

    #[test]
    fn hot_scope_gating() {
        let cfg = Config::parse("[hot]\npaths = [\"crates/trie/src\"]\n").expect("parses");
        assert!(hot_scope_applies(&cfg, "crates/trie/src/tree.rs"));
        assert!(!hot_scope_applies(&cfg, "crates/census/src/serve.rs"));
        assert!(hot_scope_applies(&Config::default(), "anything.rs"));
    }
}
