//! End-to-end lint-engine tests over the `.rs` fixtures in
//! `tests/fixtures/`: one positive and one negative fixture per rule,
//! pragma suppression and accountability, severity mapping, and a
//! self-check that the workspace at HEAD is clean under its own
//! `lint.toml`.
//!
//! All fixture runs use `Config::default()` (no `lint.toml`), under
//! which every rule applies to every file — fixtures stay config-free.

use std::path::{Path, PathBuf};

use lint::config::Config;
use lint::engine::{lint_files, lint_workspace, load_config, SeverityMap};
use lint::report::{Report, Severity};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Lints one fixture file with default config and default (deny-all)
/// severities.
fn lint_fixture(name: &str) -> Report {
    let dir = fixtures_dir();
    let path = dir.join(name);
    assert!(path.is_file(), "missing fixture {}", path.display());
    lint_files(&dir, &[path], &Config::default(), &SeverityMap::default())
        .expect("fixture lints without engine errors")
}

/// Unsuppressed findings of `rule` in the report.
fn hits<'a>(report: &'a Report, rule: &'a str) -> Vec<&'a lint::report::Diagnostic> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.rule == rule && !d.suppressed)
        .collect()
}

fn assert_bad(name: &str, rule: &str, at_least: usize) {
    let report = lint_fixture(name);
    let found = hits(&report, rule);
    assert!(
        found.len() >= at_least,
        "{name}: expected >= {at_least} unsuppressed {rule} findings, got {}: {:?}",
        found.len(),
        report.diagnostics
    );
    assert_eq!(
        report.exit_code(),
        1,
        "{name}: seeded violations must fail the run"
    );
    for d in found {
        assert!(d.line > 0, "{name}: finding has a real line");
        assert!(
            !d.snippet.is_empty(),
            "{name}: finding carries its source line"
        );
    }
}

fn assert_ok(name: &str) {
    let report = lint_fixture(name);
    let loud: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| !d.suppressed && d.discharged_by.is_none())
        .collect();
    assert!(
        loud.is_empty(),
        "{name}: expected a clean report, got {loud:?}"
    );
    assert_eq!(report.exit_code(), 0);
}

// ------------------------------------------------------- per-rule pairs

#[test]
fn l001_bad_fixture_is_flagged() {
    // unwrap, expect, panic!, todo!, unimplemented!, unreachable!, and
    // two literal index sites.
    assert_bad("l001_bad.rs", "L001", 8);
}

#[test]
fn l001_ok_fixture_is_clean() {
    assert_ok("l001_ok.rs");
}

#[test]
fn l002_bad_fixture_is_flagged() {
    // HashMap/HashSet appear on the use line and at their construction
    // sites, the two wall-clock reads, and the `{:e}` format spec.
    assert_bad("l002_bad.rs", "L002", 5);
}

#[test]
fn l002_ok_fixture_is_clean() {
    assert_ok("l002_ok.rs");
}

#[test]
fn l003_bad_fixture_is_flagged() {
    assert_bad("l003_bad.rs", "L003", 4);
}

#[test]
fn l003_ok_fixture_is_clean() {
    assert_ok("l003_ok.rs");
}

#[test]
fn l004_bad_fixture_is_flagged() {
    // One stringly `String` error and one multi-line `Box<dyn Error>`
    // signature.
    assert_bad("l004_bad.rs", "L004", 2);
}

#[test]
fn l004_ok_fixture_is_clean() {
    assert_ok("l004_ok.rs");
}

#[test]
fn l005_bad_fixture_is_flagged() {
    assert_bad("l005_bad.rs", "L005", 2);
}

#[test]
fn l005_ok_fixture_is_clean() {
    assert_ok("l005_ok.rs");
}

#[test]
fn l006_bad_fixture_is_flagged() {
    // The expression shift, its `128 - n`, `len * 3`, `scaled + 1`,
    // and `total += step`.
    assert_bad("l006_bad.rs", "L006", 5);
}

#[test]
fn l006_ok_fixture_is_clean() {
    // Also the regression fixture for `>>` generic closers: the
    // `IntoIterator<Item = u64>>(iter` signature must not read as a
    // right shift.
    assert_ok("l006_ok.rs");
}

#[test]
fn l007_bad_fixture_is_flagged() {
    // One `let _ =` and one trailing `.ok();`.
    assert_bad("l007_bad.rs", "L007", 2);
}

#[test]
fn l007_ok_fixture_is_clean() {
    assert_ok("l007_ok.rs");
}

// --------------------------------------------------- R001 reachability

/// The three-file reach fixture: `reach_entry::main` calls
/// `reach_mid::relay` calls `reach_panic::boom`, which panics. R001
/// must find the site and print the interprocedural witness chain.
#[test]
fn reach_fixture_prints_the_call_chain() {
    let dir = fixtures_dir();
    let cfg = Config::parse("[reach]\nentry_points = [\"reach_entry::main\"]\n")
        .expect("fixture config parses");
    let report = lint_files(
        &dir,
        &[
            dir.join("reach_entry.rs"),
            dir.join("reach_mid.rs"),
            dir.join("reach_panic.rs"),
        ],
        &cfg,
        &SeverityMap::default(),
    )
    .expect("fixture lints");
    let r001 = hits(&report, "R001");
    assert_eq!(r001.len(), 1, "{:?}", report.diagnostics);
    let d = r001.first().expect("one R001 finding");
    assert_eq!(d.rel, "reach_panic.rs");
    assert!(
        d.message
            .contains("reachable from entry `reach_entry::main`"),
        "{}",
        d.message
    );
    assert_eq!(
        d.chain.as_deref(),
        Some("reach_entry::main → reach_mid::relay → reach_panic::boom"),
        "chain must name every hop: {:?}",
        d.chain
    );
    assert_eq!(report.exit_code(), 1, "a reachable panic fails the run");
}

// ------------------------------------------------------ R002 dataflow

/// The acceptance fixture: an out-of-range shift reachable from an
/// entry point must fail the run with a witness trace naming the
/// originating range and the sink.
#[test]
fn r002_bad_fixture_fails_with_witness_trace() {
    let report = lint_fixture("r002_bad.rs");
    let r002 = hits(&report, "R002");
    assert_eq!(r002.len(), 1, "{:?}", report.diagnostics);
    let d = r002.first().expect("one R002 finding");
    assert_eq!(d.rel, "r002_bad.rs");
    assert!(
        d.message.contains("cannot prove `<<` amount"),
        "message names the sink: {}",
        d.message
    );
    let chain = d.chain.as_deref().expect("witness chain");
    assert!(
        chain.contains("parameter `n` of `scatter`"),
        "chain names the originating range: {chain}"
    );
    assert_eq!(
        report.exit_code(),
        1,
        "a seeded out-of-range shift fails the run"
    );
}

/// Masked, guard-refined, and loop-bounded shifts are all proven; the
/// proofs also discharge L006's syntactic findings on those lines.
#[test]
fn r002_ok_fixture_is_proven_clean() {
    assert_ok("r002_ok.rs");
    let report = lint_fixture("r002_ok.rs");
    assert!(hits(&report, "R002").is_empty(), "{:?}", report.diagnostics);
    assert!(
        report.discharged_count() >= 3,
        "each proven shift discharges its L006 finding, got {}",
        report.discharged_count()
    );
}

/// Dataflow-proven sites keep their syntactic findings in the JSON
/// output, marked `"discharged_by": "R002"` — auditable, not hidden.
#[test]
fn discharged_findings_are_visible_in_json() {
    let report = lint_fixture("r002_ok.rs");
    let json = report.render_json();
    assert!(
        json.contains("\"discharged_by\": \"R002\""),
        "JSON carries the discharge note:\n{json}"
    );
    assert!(
        json.contains("\"discharged\": "),
        "summary counts discharges:\n{json}"
    );
}

/// The three-file interprocedural fixture: `r002_entry::main` drives
/// `r002_mid::relay` with a `0..100` loop index, `relay` forwards to
/// the private `sink`, and the shift there cannot be proven — the
/// witness chain must name every hop back to the originating loop.
#[test]
fn r002_interprocedural_witness_names_every_hop() {
    let dir = fixtures_dir();
    let report = lint_files(
        &dir,
        &[dir.join("r002_entry.rs"), dir.join("r002_mid.rs")],
        &Config::default(),
        &SeverityMap::default(),
    )
    .expect("fixture lints");
    let r002 = hits(&report, "R002");
    assert_eq!(r002.len(), 1, "{:?}", report.diagnostics);
    let d = r002.first().expect("one R002 finding");
    assert_eq!(d.rel, "r002_mid.rs", "the finding sits on the sink");
    let chain = d.chain.as_deref().expect("witness chain");
    assert!(
        chain.contains("loop at r002_entry.rs"),
        "chain starts at the originating loop: {chain}"
    );
    assert!(
        chain.contains("argument `k` of relay") && chain.contains("argument `s` of sink"),
        "chain names both call hops: {chain}"
    );
    assert_eq!(report.exit_code(), 1);
}

/// Unit-domain enforcement: annotated bits and nybbles parameters must
/// not meet in linear arithmetic without an explicit conversion.
#[test]
fn r002_unit_mixing_is_flagged() {
    let dir = fixtures_dir();
    let cfg = Config::parse(
        "[rules.R002]\nbits_params = [\"blend::b\"]\nnybble_params = [\"blend::n\"]\n",
    )
    .expect("fixture config parses");
    let report = lint_files(
        &dir,
        &[dir.join("r002_units.rs")],
        &cfg,
        &SeverityMap::default(),
    )
    .expect("fixture lints");
    let mixes: Vec<_> = hits(&report, "R002")
        .into_iter()
        .filter(|d| d.message.contains("unit mismatch"))
        .collect();
    assert_eq!(mixes.len(), 1, "{:?}", report.diagnostics);
    let d = mixes.first().expect("one unit-mix finding");
    assert!(
        d.message.contains("bit indices") || d.message.contains("bits"),
        "{}",
        d.message
    );
    assert_eq!(report.exit_code(), 1);
}

// -------------------------------------------- R003/R004 concurrency

/// The seeded AB/BA deadlock: `fwd` holds `A` and takes `B` through
/// `take_b`, `rev` holds `B` and takes `A` through `take_a`. R003 must
/// report one cycle whose witness spells both chains — every fn hop
/// and both lock names.
#[test]
fn r003_cycle_fixture_prints_both_witness_chains() {
    let report = lint_fixture("r003_cycle.rs");
    let r003 = hits(&report, "R003");
    assert_eq!(r003.len(), 1, "{:?}", report.diagnostics);
    let d = r003.first().expect("one R003 finding");
    assert_eq!(d.rel, "r003_cycle.rs");
    assert!(
        d.message.contains("lock-order cycle"),
        "message names the failure class: {}",
        d.message
    );
    let chain = d.chain.as_deref().expect("cycle witness");
    for hop in [
        "r003_cycle::fwd",
        "r003_cycle::take_b",
        "r003_cycle::rev",
        "r003_cycle::take_a",
    ] {
        assert!(chain.contains(hop), "chain must name hop {hop}: {chain}");
    }
    assert!(
        chain.contains("`A`") && chain.contains("`B`"),
        "chain names both locks: {chain}"
    );
    assert!(
        chain.contains("holds") && chain.contains("acquires"),
        "each chain spells hold-then-acquire: {chain}"
    );
    assert_eq!(report.exit_code(), 1, "a lock-order cycle fails the run");
}

/// Blocking while a guard is live: a direct `thread::sleep` under a
/// static's guard and a channel `recv()` under a field's guard.
#[test]
fn r004_bad_fixture_flags_both_blocking_sites() {
    let report = lint_fixture("r004_bad.rs");
    let r004 = hits(&report, "R004");
    assert_eq!(r004.len(), 2, "{:?}", report.diagnostics);
    let sleep = r004
        .iter()
        .find(|d| d.message.contains("sleep"))
        .expect("sleep-under-lock finding");
    assert!(
        sleep.message.contains("`STATE`"),
        "names the held lock: {}",
        sleep.message
    );
    let recv = r004
        .iter()
        .find(|d| d.message.contains("recv"))
        .expect("recv-under-lock finding");
    assert!(
        recv.message.contains("`Inbox.seq`"),
        "names the held field lock: {}",
        recv.message
    );
    for d in &r004 {
        let chain = d.chain.as_deref().expect("R004 witness");
        assert!(chain.contains("holds"), "chain shows the hold: {chain}");
    }
    assert_eq!(report.exit_code(), 1);
}

/// Guards dropped before blocking — explicitly or by dying at their
/// statement's `;` — are clean.
#[test]
fn r004_ok_fixture_is_clean() {
    assert_ok("r004_ok.rs");
    let report = lint_fixture("r004_ok.rs");
    assert!(hits(&report, "R004").is_empty(), "{:?}", report.diagnostics);
}

// ---------------------------------------------------------------- L008

/// Raw `std::fs` mutations in a durability-scoped module: the write,
/// the rename, and the `File::create` are each a bypass.
#[test]
fn l008_bad_fixture_flags_every_bypass() {
    assert_bad("l008_bad.rs", "L008", 3);
}

/// Mutations routed through a Vfs seam are clean.
#[test]
fn l008_ok_fixture_is_clean() {
    assert_ok("l008_ok.rs");
}

// ------------------------------------------- R005/R006 allocations

/// The two-hop R005 fixture: `hot` loops and calls `relay`, which
/// calls `leaf`, which allocates a fresh `String` every call. The
/// witness chain must name the entry, the loop line, both call hops,
/// and the concrete allocation site.
#[test]
fn r005_bad_fixture_chain_names_every_hop() {
    let dir = fixtures_dir();
    let cfg = Config::parse("[hot]\nentry_points = [\"r005_bad::hot\"]\n").expect("config parses");
    let report = lint_files(
        &dir,
        &[dir.join("r005_bad.rs")],
        &cfg,
        &SeverityMap::default(),
    )
    .expect("fixture lints");
    let r005 = hits(&report, "R005");
    assert_eq!(r005.len(), 1, "{:?}", report.diagnostics);
    let d = r005.first().expect("one R005 finding");
    assert_eq!(d.rel, "r005_bad.rs");
    assert!(
        d.message.contains("allocates on every iteration"),
        "message names the failure class: {}",
        d.message
    );
    let chain = d.chain.as_deref().expect("witness chain");
    for hop in [
        "r005_bad::hot",
        "loop @ r005_bad.rs:",
        "r005_bad::relay",
        "r005_bad::leaf",
        "String::new",
    ] {
        assert!(chain.contains(hop), "chain must name {hop}: {chain}");
    }
    assert_eq!(report.exit_code(), 1, "a hot-loop allocation fails the run");
}

/// The hoisted-buffer counterpart: one reservation outside the loop,
/// `clear()`-reuse inside, out-param fill — proven allocation-free per
/// iteration under the same `[hot]` config.
#[test]
fn r005_ok_fixture_reused_buffer_is_clean() {
    let dir = fixtures_dir();
    let cfg = Config::parse("[hot]\nentry_points = [\"r005_ok::hot\"]\n").expect("config parses");
    let report = lint_files(
        &dir,
        &[dir.join("r005_ok.rs")],
        &cfg,
        &SeverityMap::default(),
    )
    .expect("fixture lints");
    let loud: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| !d.suppressed && d.discharged_by.is_none())
        .collect();
    assert!(loud.is_empty(), "expected a clean report, got {loud:?}");
    assert_eq!(report.exit_code(), 0);
}

/// Unreserved `push` growth in a loop is flagged even outside any hot
/// path — R006 is intra-function and needs no `[hot]` config.
#[test]
fn r006_bad_fixture_flags_unreserved_growth() {
    let report = lint_fixture("r006_bad.rs");
    let r006 = hits(&report, "R006");
    assert_eq!(r006.len(), 1, "{:?}", report.diagnostics);
    let d = r006.first().expect("one R006 finding");
    assert!(
        d.message.contains("`out`") && d.message.contains("with_capacity"),
        "message names the buffer and the remedy: {}",
        d.message
    );
    assert_eq!(report.exit_code(), 1);
}

/// Both sanctioned growth disciplines — dominating reservation and
/// `&mut` out-param — are proven clean.
#[test]
fn r006_ok_fixture_is_clean() {
    assert_ok("r006_ok.rs");
}

// ------------------------------------------------------------- pragmas

#[test]
fn valid_pragmas_suppress_and_are_all_used() {
    let report = lint_fixture("pragma_ok.rs");
    assert_eq!(
        report.exit_code(),
        0,
        "all violations carry pragmas: {:?}",
        report.diagnostics
    );
    assert_eq!(
        report.suppressed_count(),
        3,
        "trailing, standalone, and file-wide pragmas each suppress one finding"
    );
    assert!(
        hits(&report, "P001").is_empty(),
        "no pragma is unused in pragma_ok.rs"
    );
    assert!(hits(&report, "P000").is_empty());
}

#[test]
fn bad_pragmas_do_not_suppress_and_are_reported() {
    let report = lint_fixture("pragma_bad.rs");
    assert_eq!(report.exit_code(), 1);
    // The reason-less `allow(L001)` and the `gibberish(...)` verb are
    // both pragma-syntax findings.
    assert_eq!(hits(&report, "P000").len(), 2, "{:?}", report.diagnostics);
    // A reason-less pragma must NOT suppress the finding it sits on.
    assert_eq!(hits(&report, "L001").len(), 1);
    // The well-formed pragma with nothing to suppress is dead weight.
    assert_eq!(hits(&report, "P001").len(), 1);
    assert_eq!(report.suppressed_count(), 0);
}

// ------------------------------------------------------------ severity

#[test]
fn warn_severity_reports_without_failing() {
    let dir = fixtures_dir();
    let mut severities = SeverityMap::default();
    severities.push("all", Severity::Warn);
    let report = lint_files(
        &dir,
        &[dir.join("l001_bad.rs")],
        &Config::default(),
        &severities,
    )
    .expect("lints");
    assert_eq!(report.exit_code(), 0, "warnings never fail the run");
    assert!(report.warned().count() >= 8);
    assert_eq!(report.denied().count(), 0);

    // Re-denying one rule over the warn-all baseline restores failure.
    severities.push("L001", Severity::Deny);
    let report = lint_files(
        &dir,
        &[dir.join("l001_bad.rs")],
        &Config::default(),
        &severities,
    )
    .expect("lints");
    assert_eq!(
        report.exit_code(),
        1,
        "later --deny L001 overrides --warn all"
    );
}

// ----------------------------------------------------------- self-check

/// The workspace at HEAD must be clean under its own checked-in
/// `lint.toml` — the same invariant CI enforces with
/// `cargo run -p lint -- --workspace --deny all`. If this fails, a
/// change introduced a violation without fixing it or justifying it
/// with a reasoned pragma.
#[test]
fn workspace_at_head_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    assert!(
        root.join("lint.toml").is_file(),
        "self-check needs the checked-in lint.toml at {}",
        root.display()
    );
    let cfg = load_config(&root).expect("lint.toml parses");
    let report = lint_workspace(&root, &cfg, &SeverityMap::default()).expect("workspace lints");
    let loud: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| !d.suppressed && d.discharged_by.is_none())
        .map(|d| format!("{}:{} {} {}", d.rel, d.line, d.rule, d.message))
        .collect();
    assert!(
        loud.is_empty(),
        "workspace is not lint-clean:\n{}",
        loud.join("\n")
    );
    assert_eq!(report.exit_code(), 0);
    assert!(
        report.files_scanned > 50,
        "discovery found the whole workspace"
    );
    // Reasoned pragmas are debt the dataflow is meant to retire, not
    // accrue: the ceiling is the count at HEAD (3 — the supervisor's
    // L002 wall-clock allowance, faults.rs trip()'s R001 allowance, and
    // serve.rs now()'s L002 allowance: the daemon needs one monotonic
    // clock for socket/drain deadlines, funneled through a single
    // helper that no snapshot, response body, or equivalence key ever
    // reads). The ceiling includes the concurrency rules added with
    // R003/R004/L008: the daemon's hot paths are *proven* clean (locks
    // dropped before I/O, all mutations through core::vfs), not
    // pragma'd clean, so none of the three budget slots may be spent
    // on them. Raising it needs a reviewed justification here, not
    // just a new pragma.
    assert!(
        report.suppressed_count() <= 3,
        "reasoned-pragma total grew to {} (ceiling 3, R003/R004/L008 \
         included) — prove the site via R002/R003/R004 or justify \
         raising the ceiling",
        report.suppressed_count()
    );
    let conc_pragmas: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| d.suppressed && matches!(d.rule.as_str(), "R003" | "R004" | "L008"))
        .map(|d| format!("{}:{} {}", d.rel, d.line, d.rule))
        .collect();
    assert!(
        conc_pragmas.is_empty(),
        "concurrency/durability findings must be fixed, never \
         pragma'd:\n{}",
        conc_pragmas.join("\n")
    );
    // The allocation rules joined the same regime: the ceiling above
    // already includes R005/R006, and the trie's per-address descent
    // loop in particular must stay *proven* allocation-free — the
    // arena rewrite exists precisely so `try_insert` carries no
    // per-iteration allocation. A pragma there would quietly undo the
    // pipeline's headline optimization.
    let r005_pragmas: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| d.suppressed && d.rule == "R005" && d.rel.contains("trie/src/tree.rs"))
        .map(|d| format!("{}:{} {}", d.rel, d.line, d.rule))
        .collect();
    assert!(
        r005_pragmas.is_empty(),
        "R005 in the trie descent path must be fixed, never \
         pragma'd:\n{}",
        r005_pragmas.join("\n")
    );
}
