//! L005 fixture: exit codes outside the documented contract.

pub fn bail(code: i32) {
    if code == 0 {
        std::process::exit(0);
    }
    std::process::exit(42);
}
