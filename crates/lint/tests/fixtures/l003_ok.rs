//! L003 fixture: sanctioned narrowing and genuinely lossless casts.

pub fn widens(x: u8, y: u16) -> (u32, u64, u128, f64) {
    let a = u32::from(x);
    let b = x as u64; // widening to u64/u128/f64 is not in L003's scope
    let c = y as u128;
    let d = y as f64;
    (a, b, c, d)
}
