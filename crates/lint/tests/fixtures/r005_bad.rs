//! R005 fixture: the hot entry's loop reaches a fresh allocation two
//! call hops down — the witness chain must name the entry, the loop,
//! both hops, and the concrete allocation site.

/// Hot entry: iterates the window and calls the relay each step.
pub fn hot(days: &[u64]) -> u64 {
    let mut acc = 0u64;
    for &d in days {
        acc = acc.saturating_add(relay(d));
    }
    acc
}

/// First hop: allocation-free itself, but its callee is not.
fn relay(d: u64) -> u64 {
    leaf(d)
}

/// Second hop: a fresh `String` on every call.
fn leaf(d: u64) -> u64 {
    let mut s = String::new();
    s.push('x');
    (s.len() as u64) ^ d
}
