//! R004 fixture (clean): the same blocking effects as `r004_bad.rs`,
//! but every guard is dropped — explicitly or by statement-temporary
//! scope — before the thread blocks.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;
use std::time::Duration;

/// The lock the clean paths use.
pub static STATE: Mutex<u32> = Mutex::new(0);

/// Explicit `drop(g)` before sleeping — clean.
pub fn drop_then_sleep() {
    let g = STATE.lock().unwrap_or_else(|e| e.into_inner());
    drop(g);
    std::thread::sleep(Duration::from_millis(1));
}

/// A temporary guard dies at its own statement's `;`, so the receive
/// on the next line runs lock-free — clean.
pub fn swap_then_recv(rx: &Receiver<u32>) -> u32 {
    *STATE.lock().unwrap_or_else(|e| e.into_inner()) = 7;
    match rx.recv() {
        Ok(v) => v,
        Err(_) => 0,
    }
}
