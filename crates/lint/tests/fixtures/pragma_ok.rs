//! Pragma fixture: well-formed suppressions in all three placements.

pub fn suppressed(v: u128, r: Result<u32, ()>) -> u32 {
    let a = (v >> 120) as u8; // lint: allow(L003, reason = "top byte, mask by shift width")
    // lint: allow(L001, reason = "caller contract guarantees Ok here")
    let b = r.unwrap();
    u32::from(a) + b
}

// lint: allow-file(L002, reason = "scratch module; output never reaches products")
pub fn wall_clock() -> std::time::Instant {
    std::time::Instant::now()
}
