//! L001 fixture: panic-free library code plus everything that merely
//! *looks* like a panic path — lookalike names, strings, comments, and
//! test regions.

pub fn clean(v: Vec<u32>, r: Result<u32, ()>, i: usize) -> Option<u32> {
    let a = r.unwrap_or(0);
    let b = r.unwrap_or_else(|_| 1);
    let c = v.get(0).copied().unwrap_or_default();
    // .unwrap() in a comment is fine; so is "panic!(boom)" in a string:
    let _s = "x.unwrap(); panic!(no)";
    let _t: [u8; 4] = [0; 4]; // array type, not an index
    let d = v[i]; // variable index is allowed; bounds come from the caller
    Some(a + b + c + d)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v = vec![1, 2, 3];
        assert_eq!(v[0], 1);
        let _ = "x".parse::<u32>().unwrap();
        panic!("even explicitly");
    }
}
