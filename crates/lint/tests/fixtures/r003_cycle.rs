//! R003 fixture: a seeded two-lock ordering cycle. `fwd` takes `A`
//! then (through `take_b`) `B`; `rev` takes them in the opposite
//! order — the classic AB/BA deadlock, which the lock-order graph
//! reports as a cycle with one witness chain per direction.

use std::sync::Mutex;

/// First lock of the seeded cycle.
pub static A: Mutex<u32> = Mutex::new(0);
/// Second lock of the seeded cycle.
pub static B: Mutex<u32> = Mutex::new(0);

/// Acquires `A`, then `B` via `take_b` — the forward chain.
pub fn fwd() {
    let g = A.lock().unwrap_or_else(|e| e.into_inner());
    take_b();
    drop(g);
}

/// Acquires `B` while `fwd` still holds `A`.
pub fn take_b() {
    let h = B.lock().unwrap_or_else(|e| e.into_inner());
    drop(h);
}

/// Acquires `B`, then `A` via `take_a` — the reverse chain.
pub fn rev() {
    let g = B.lock().unwrap_or_else(|e| e.into_inner());
    take_a();
    drop(g);
}

/// Acquires `A` while `rev` still holds `B`.
pub fn take_a() {
    let h = A.lock().unwrap_or_else(|e| e.into_inner());
    drop(h);
}
