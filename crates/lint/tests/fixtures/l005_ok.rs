//! L005 fixture: every exit names a documented constant.

pub const EXIT_OK: i32 = 0;
pub const EXIT_USAGE: i32 = 2;

pub fn bail(ok: bool) {
    if ok {
        std::process::exit(EXIT_OK);
    }
    std::process::exit(crate::EXIT_USAGE);
}
