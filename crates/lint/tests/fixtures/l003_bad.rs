//! L003 fixture: raw narrowing casts in bit math.

pub fn narrows(v: u128) -> (u8, u16, u32, usize) {
    let a = (v >> 124) as u8;
    let b = (v >> 112) as u16;
    let c = (v >> 96) as u32;
    let d = v.leading_zeros() as usize;
    (a, b, c, d)
}
