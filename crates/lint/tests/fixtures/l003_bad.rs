//! L003 fixture: raw narrowing casts in bit math.
//!
//! The shifts deliberately leave 64 live bits (and the `usize` cast a
//! full 128) so the R002 dataflow cannot prove the casts lossless and
//! discharge them — these must stay loud syntactic findings.

pub fn narrows(v: u128) -> (u8, u16, u32, usize) {
    let a = (v >> 64) as u8;
    let b = (v >> 64) as u16;
    let c = (v >> 64) as u32;
    let d = v as usize;
    (a, b, c, d)
}
