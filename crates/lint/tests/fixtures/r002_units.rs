//! R002 unit-domain fixture: a bit index and a nybble index combined
//! in linear arithmetic without an explicit conversion. The test's
//! config annotates `blend::b` as bits and `blend::n` as nybbles.

pub fn blend(b: u32, n: u32) -> u32 {
    b + n
}
