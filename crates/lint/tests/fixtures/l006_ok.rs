//! L006 fixture: overflow policy spelled explicitly (clean).

/// Checked/wrapping/saturating calls state what overflow does.
pub fn explicit(v: u128, n: u8) -> u128 {
    let shifted = match v.checked_shl(u32::from(n)) {
        Some(x) => x,
        None => 0,
    };
    shifted.wrapping_add(1).saturating_mul(2)
}

/// A shift by a literal amount is compiler-checked.
pub fn literal_shift(v: u128) -> u128 {
    v << 3
}

/// `usize` index arithmetic is counting, not bit math.
pub fn index_math(i: usize) -> usize {
    i * 2 + 1
}

/// Regression: the `>>(` in this signature closes two generic brackets
/// and must not be read as a right shift.
pub fn from_parts<I: IntoIterator<Item = u64>>(iter: I) -> u64 {
    iter.into_iter().fold(0, u64::wrapping_add)
}
