//! R006 fixture: unreserved growth inside a loop — the vector
//! reallocates O(log n) times as it fills.

/// Collects doubled values with no reservation before the loop.
pub fn doubled(xs: &[u64]) -> Vec<u64> {
    let mut out = Vec::new();
    for &x in xs {
        out.push(x.saturating_mul(2));
    }
    out
}
