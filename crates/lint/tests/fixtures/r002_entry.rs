//! R002 interprocedural fixture, hop 1 of 2: the entry point drives
//! the relay with a loop index whose widened range crosses 64, two
//! calls away from the shift that finally trips over it.

use r002_mid::relay;

pub fn main() -> u64 {
    let mut acc = 0u64;
    for i in 0..100u64 {
        acc = acc.wrapping_add(relay(i));
    }
    acc
}
