//! R001 fixture: the panic site at the end of the chain.

/// Panics on an empty vector — reachable from `reach_entry::main`.
pub fn boom() {
    let v: Vec<u8> = Vec::new();
    v.get(0).unwrap();
}
