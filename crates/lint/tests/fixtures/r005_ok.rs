//! R005 fixture: the hot loop reuses one buffer hoisted outside the
//! loop — every call inside it is allocation-free per iteration.

/// Hot entry: one reservation, `clear()`-reuse, no per-day allocation.
pub fn hot(days: &[u64]) -> u64 {
    let mut buf: Vec<u64> = Vec::with_capacity(days.len());
    let mut acc = 0u64;
    for &d in days {
        buf.clear();
        fill(d, &mut buf);
        acc = acc.saturating_add(drain(&buf));
    }
    acc
}

/// Writes into the caller's buffer: amortized growth, reservation is
/// the caller's job.
fn fill(d: u64, out: &mut Vec<u64>) {
    out.push(d);
}

/// Pure fold over the reused buffer.
fn drain(buf: &[u64]) -> u64 {
    let mut n = 0u64;
    for &v in buf {
        n = n.saturating_add(v);
    }
    n
}
