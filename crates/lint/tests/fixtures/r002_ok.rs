//! R002 fixture: the same shift shapes, proven in range.
//!
//! Each sink is guarded the way the workspace crates guard theirs — a
//! mask, a comparison refinement, or a bounded loop — so the dataflow
//! proves every obligation and the run stays clean.

/// Masked: `n & 63` is in `[0, 63]` whatever the caller passes.
pub fn masked(x: u64, n: u32) -> u64 {
    x << (n & 63)
}

/// Guarded: the early return refutes `n >= 64` on the fallthrough path.
pub fn guarded(x: u64, n: u32) -> u64 {
    if n >= 64 {
        return 0;
    }
    x << n
}

/// Loop-bounded: the widened loop range still stays below the width.
pub fn swept(x: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..64u32 {
        acc |= x >> i;
    }
    acc
}
