//! L004 fixture: public fallible APIs with stringly errors.

pub fn stringly() -> Result<u32, String> {
    Err("nope".to_string())
}

pub fn boxed(
    input: u32,
) -> Result<u32, Box<dyn std::error::Error>> {
    Ok(input)
}
