//! Pragma fixture: malformed, reason-less, and dead pragmas.

pub fn bad_pragmas(r: Result<u32, ()>) -> u32 {
    // A reason-less pragma is P000 and must NOT suppress the finding:
    let a = r.unwrap(); // lint: allow(L001)
    a
}

// lint: allow(L003, reason = "suppresses nothing below - P001")
pub fn no_cast_here() -> u32 {
    7
}

// lint: gibberish(L001)
pub fn after_gibberish() -> u32 {
    8
}
