//! R002 interprocedural fixture, hop 2 of 2: a private relay forwards
//! its argument to the private shift sink. Neither function narrows
//! the value, so the entry's loop range must be carried through both
//! observed-argument summaries into the witness chain.

fn relay(k: u64) -> u64 {
    sink(k)
}

fn sink(s: u64) -> u64 {
    1u64 << s
}
