//! L007 fixture: discarded Results (seeded violations).

/// A unit error for the fixture's fallible API.
pub struct Broken;

/// The fallible API whose Result must not be swallowed.
pub fn persist() -> Result<(), Broken> {
    Err(Broken)
}

/// `let _ =` throws the error away.
pub fn shrug() {
    let _ = persist();
}

/// A trailing `.ok();` does the same.
pub fn shrug_harder() {
    persist().ok();
}
