//! L007 fixture: Results handled or propagated (clean).

/// A unit error for the fixture's fallible API.
pub struct Broken;

/// The fallible API under test.
pub fn persist() -> Result<(), Broken> {
    Err(Broken)
}

/// Propagation keeps the error alive.
pub fn forward() -> Result<(), Broken> {
    persist()
}

/// Matching handles both arms.
pub fn handle() -> u32 {
    match persist() {
        Ok(()) => 1,
        Err(Broken) => 0,
    }
}
