//! L006 fixture: unchecked bit arithmetic (seeded violations).

/// A shift whose amount can reach the width panics in debug builds.
pub fn shift_by_expr(v: u128, n: u8) -> u128 {
    v << (128 - n)
}

/// Bare `*`/`+` on sized integers overflows silently in release.
pub fn bare_math(len: u8) -> u8 {
    let scaled: u8 = len * 3;
    scaled + 1
}

/// Compound assignment counts too.
pub fn accumulate(mut total: u64, step: u64) -> u64 {
    total += step;
    total
}
