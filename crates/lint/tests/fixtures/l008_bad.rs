//! L008 fixture: a durability-scoped module mutating the real
//! filesystem behind the Vfs's back — a raw `std::fs::write`, a
//! rename, and a direct `File::create`, none of which the crash-point
//! explorer can fault-inject.

use std::fs::File;
use std::path::Path;

/// Persists bytes with raw `std::fs` — bypasses the Vfs.
pub fn persist(path: &Path, data: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, data)
}

/// Publishes via a raw rename — bypasses the Vfs journal protocol.
pub fn publish(tmp: &Path, dst: &Path) -> std::io::Result<()> {
    std::fs::rename(tmp, dst)
}

/// Opens a file for writing directly — bypasses the Vfs.
pub fn open_sink(path: &Path) -> std::io::Result<File> {
    File::create(path)
}
