//! R001 fixture: the configured entry point of a three-file call chain.

use reach_mid::relay;

fn main() {
    relay();
}
