//! L001 fixture: every panic path the rule must flag.

pub fn panics_everywhere(v: Vec<u32>, r: Result<u32, ()>) -> u32 {
    let a = r.unwrap();
    let b = v.first().expect("nonempty");
    if a > 100 {
        panic!("too big");
    }
    if *b == 0 {
        todo!();
    }
    if a == *b {
        unimplemented!();
    }
    if a + b == 3 {
        unreachable!("sum is never 3");
    }
    v[0] + v[12]
}
