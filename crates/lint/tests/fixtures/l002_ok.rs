//! L002 fixture: deterministic equivalents.

use std::collections::{BTreeMap, BTreeSet};

pub fn deterministic() -> String {
    let m: BTreeMap<u32, u32> = BTreeMap::new();
    let s: BTreeSet<u32> = BTreeSet::new();
    let x = 1.0f64 / 3.0;
    // Fixed precision is stable run-to-run; only {:e}/{:.*} formats are not.
    format!("{x:.6} {} {}", m.len(), s.len())
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn tests_may_use_wall_clocks() {
        let _m: HashMap<u32, u32> = HashMap::new();
        let _t = Instant::now();
    }
}
