//! L002 fixture: nondeterminism hazards in product-producing code.

use std::collections::{HashMap, HashSet};
use std::time::{Instant, SystemTime};

pub fn hazards() -> String {
    let m: HashMap<u32, u32> = HashMap::new();
    let s: HashSet<u32> = HashSet::new();
    let _t = SystemTime::now();
    let _i = Instant::now();
    let x = 1.0f64 / 3.0;
    format!("{:e} {} {}", x, m.len(), s.len())
}
