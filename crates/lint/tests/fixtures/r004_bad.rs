//! R004 fixture: blocking effects performed while a guard is live — a
//! direct sleep under a let-bound guard, and a channel receive under a
//! guard taken through a field on `self`.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;
use std::time::Duration;

/// The lock both violations hold.
pub static STATE: Mutex<u32> = Mutex::new(0);

/// Sleeps while holding `STATE` — the direct-effect violation.
pub fn sleepy() {
    let g = STATE.lock().unwrap_or_else(|e| e.into_inner());
    std::thread::sleep(Duration::from_millis(1));
    drop(g);
}

/// A queue whose consumer blocks on a channel under its own lock.
pub struct Inbox {
    /// Serialises consumers.
    pub seq: Mutex<u32>,
}

impl Inbox {
    /// Receives while holding `Inbox.seq` — the method-form violation.
    pub fn drain(&self, rx: &Receiver<u32>) -> u32 {
        let mut g = self.seq.lock().unwrap_or_else(|e| e.into_inner());
        let got = match rx.recv() {
            Ok(v) => v,
            Err(_) => 0,
        };
        *g = got;
        got
    }
}
