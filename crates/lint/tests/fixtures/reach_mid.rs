//! R001 fixture: the middle hop — panic-free itself, but on the path.

use reach_panic::boom;

/// Relays the entry point's call one hop further.
pub fn relay() {
    boom();
}
