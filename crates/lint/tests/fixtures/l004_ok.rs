//! L004 fixture: typed errors, private stringly fns, and Result aliases.

#[derive(Debug)]
pub struct TypedError;

pub fn typed() -> Result<u32, TypedError> {
    Err(TypedError)
}

pub fn io_alias() -> std::io::Result<u32> {
    Ok(1)
}

fn private_stringly() -> Result<u32, String> {
    Err("private fns are outside the public error taxonomy".into())
}

pub fn uses_it() -> Result<u32, TypedError> {
    private_stringly().map_err(|_| TypedError)
}
