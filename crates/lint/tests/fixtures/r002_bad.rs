//! R002 fixture: an out-of-range shift reachable from an entry point.
//!
//! `n` arrives unbounded from outside the analyzed set (`scatter` is
//! `pub`, so its entry state is the declared-type top), and nothing on
//! the path to the shift narrows it below 64 — the dataflow must fail
//! the run with a witness trace naming the originating range and the
//! shift sink.

pub fn scatter(x: u64, n: u32) -> u64 {
    x << n
}
