//! R006 fixture: growth disciplined both sanctioned ways — a
//! dominating `with_capacity` reservation, and a `&mut` out-param
//! whose reservation is the caller's job.

/// Reserves exactly once, then grows within the reservation.
pub fn doubled(xs: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(xs.len());
    for &x in xs {
        out.push(x.saturating_mul(2));
    }
    out
}

/// Growth into a caller-owned buffer.
pub fn doubled_into(xs: &[u64], out: &mut Vec<u64>) {
    for &x in xs {
        out.push(x.saturating_mul(2));
    }
}
