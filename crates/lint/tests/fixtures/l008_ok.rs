//! L008 fixture (clean): the durability-scoped module routes every
//! mutation through an injected Vfs handle, so fault injection and
//! crash-point exploration see all of them.

use std::path::{Path, PathBuf};

/// Typed error for the fixture's Vfs seam.
pub struct VfsError;

/// The filesystem seam a durability-scoped module writes through.
pub trait Vfs {
    /// Writes `data` at `path` through the journal protocol.
    fn write(&self, path: &Path, data: &[u8]) -> Result<(), VfsError>;
    /// Atomically renames `tmp` over `dst`.
    fn rename(&self, tmp: &Path, dst: &Path) -> Result<(), VfsError>;
}

/// Persists bytes through the Vfs seam — crash-safe and in scope for
/// fault injection.
pub fn persist(vfs: &dyn Vfs, path: &Path, data: &[u8]) -> Result<(), VfsError> {
    vfs.write(path, data)
}

/// Publishes tmp-then-rename through the Vfs seam.
pub fn publish(vfs: &dyn Vfs, dir: &Path, data: &[u8]) -> Result<(), VfsError> {
    let tmp: PathBuf = dir.join("snapshot.tmp");
    let dst: PathBuf = dir.join("snapshot.bin");
    vfs.write(&tmp, data)?;
    vfs.rename(&tmp, &dst)
}
