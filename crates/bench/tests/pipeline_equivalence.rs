//! The pipeline-equivalence gate as a test: the optimized kernels
//! (arena trie, memoized densify, merged-cursor stability) must produce
//! byte-identical outputs to the naive references they replaced, on a
//! seeded synthetic world. `pipeline_speed` enforces the same gate at
//! benchmark scale; this covers it in `cargo test` at a scale small
//! enough for CI.

use v6census_bench::naive::{naive_stable_on, NaiveTrie};
use v6census_core::temporal::{DailyObservations, StabilityParams};
use v6census_synth::world::epochs;
use v6census_synth::{World, WorldConfig};
use v6census_trie::{AddrSet, RadixTree};

fn observations(scale: f64, seed: u64) -> DailyObservations {
    let world = World::standard(WorldConfig { seed, scale });
    let reference = epochs::mar2015();
    let mut obs = DailyObservations::new();
    for day in (reference - 7).range_inclusive(reference + 13) {
        obs.record(day, AddrSet::from_iter(world.day_log(day).addrs()));
    }
    obs
}

#[test]
fn arena_trie_matches_naive_box_trie() {
    let obs = observations(0.02, 7);
    let reference = epochs::mar2015();
    let mut naive = NaiveTrie::default();
    let mut arena = RadixTree::new();
    for a in obs.on(reference).iter() {
        naive.insert_addr(a, 1);
        arena.insert_addr(a, 1);
    }
    assert!(
        !arena.entries().is_empty(),
        "seeded world produced no addresses"
    );
    assert_eq!(
        format!("{:?}", naive.entries()),
        format!("{:?}", arena.entries()),
        "arena trie preorder entries diverged from the Box-trie reference"
    );
}

#[test]
fn memoized_densify_matches_recursive_reference() {
    let obs = observations(0.02, 7);
    let reference = epochs::mar2015();
    let mut naive = NaiveTrie::default();
    let mut arena = RadixTree::new();
    for a in obs.on(reference).iter() {
        naive.insert_addr(a, 1);
        arena.insert_addr(a, 1);
    }
    for (n, p) in [(4u64, 64u8), (2, 48), (8, 112), (1, 128)] {
        let before = naive.densify(n, p);
        let after = arena.densify(n, p);
        if n == 1 && p == 128 {
            assert!(
                !after.is_empty(),
                "densify(1, 128) must report every observed host"
            );
        }
        assert_eq!(
            format!("{before:?}"),
            format!("{after:?}"),
            "densify({n}, {p}) diverged from the recursive reference"
        );
    }
}

#[test]
fn merged_cursor_stability_matches_union_of_intersections() {
    let obs = observations(0.02, 7);
    let reference = epochs::mar2015();
    for params in [
        StabilityParams::three_day(),
        StabilityParams::nd(1),
        StabilityParams::nd(7),
    ] {
        let mut witnessed_any = false;
        for d in reference.range_inclusive(reference + 6) {
            let before = naive_stable_on(&obs, d, &params);
            let after = obs.stable_on(d, &params);
            witnessed_any |= !after.is_empty();
            assert_eq!(
                format!("{before:?}"),
                format!("{after:?}"),
                "stable_on({d}) with n={} diverged from the reference",
                params.n
            );
        }
        assert!(
            params.n == 7 || witnessed_any,
            "n={} stability should witness at least one stable address",
            params.n
        );
    }
}
