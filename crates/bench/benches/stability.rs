//! Microbenchmarks for the temporal classifier: nd-stable over sliding
//! windows, including the window-size sweep the paper marks as future
//! work.

use v6census_addr::Addr;
use v6census_bench::timing::{black_box, Harness};
use v6census_core::temporal::{DailyObservations, Day, StabilityParams};
use v6census_trie::AddrSet;

/// A 15-day observation history with daily churn: `stable_share` of the
/// population recurs daily; the rest is fresh every day.
fn history(daily: u64, stable_share: f64) -> (DailyObservations, Day) {
    let base = Day::from_ymd(2015, 3, 10);
    let stable_n = (daily as f64 * stable_share) as u64;
    let mut obs = DailyObservations::new();
    for d in 0..15i32 {
        let mut addrs = Vec::with_capacity(daily as usize);
        for i in 0..stable_n {
            addrs.push(Addr((0x2001_0db8u128 << 96) | i as u128));
        }
        for i in stable_n..daily {
            let lo = (i ^ (d as u64) << 40).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            addrs.push(Addr((0x2a00_8000u128 << 96) | lo as u128));
        }
        obs.record(base + d, AddrSet::from_iter(addrs));
    }
    (obs, base + 7)
}

fn main() {
    let h = Harness::from_env();

    for daily in [10_000u64, 100_000] {
        let (obs, reference) = history(daily, 0.1);
        h.bench(&format!("stable_on_3d/{daily}"), || {
            black_box(
                obs.stable_on(reference, &StabilityParams::three_day())
                    .len(),
            )
        });
    }

    let (obs, reference) = history(50_000, 0.1);
    for reach in [3u32, 7, 14] {
        let params = StabilityParams::nd(3).with_window(reach, reach);
        h.bench(&format!("window_sweep_50k/{reach}"), || {
            black_box(obs.stable_on(reference, &params).len())
        });
    }

    let (obs, reference) = history(20_000, 0.1);
    h.bench("stable_over_week_20k", || {
        black_box(
            obs.stable_over_week(reference - 3, &StabilityParams::three_day())
                .stable
                .len(),
        )
    });
}
