//! Microbenchmarks for the Patricia trie: inserts, longest-prefix match,
//! and subtree counting.

use v6census_addr::{Addr, Prefix};
use v6census_bench::timing::{black_box, Harness};
use v6census_trie::{PrefixMap, RadixTree};

fn synth_addrs(n: u64) -> Vec<Addr> {
    (0..n)
        .map(|i| {
            let hi = 0x2001_0db8_0000_0000u64 | (i % 997) << 4;
            let lo = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            Addr(((hi as u128) << 64) | lo as u128)
        })
        .collect()
}

fn main() {
    let h = Harness::from_env();

    for n in [1_000u64, 10_000, 100_000] {
        let addrs = synth_addrs(n);
        h.bench(&format!("trie_insert/{n}"), || {
            let mut t = RadixTree::new();
            for &a in &addrs {
                t.insert_addr(a, 1);
            }
            black_box(t.total())
        });
    }

    let mut rt: PrefixMap<u32> = PrefixMap::new();
    for i in 0..5_000u32 {
        let p = Prefix::new(
            Addr(((0x2000u128 + (i as u128 % 0x800)) << 112) | ((i as u128) << 80)),
            48,
        );
        rt.insert(p, i);
    }
    let probes = synth_addrs(10_000);
    h.bench("prefix_map_lpm_10k", || {
        let mut hits = 0usize;
        for &a in &probes {
            if rt.longest_match(a).is_some() {
                hits += 1;
            }
        }
        black_box(hits)
    });

    let addrs = synth_addrs(50_000);
    let mut t = RadixTree::new();
    for &a in &addrs {
        t.insert_addr(a, 1);
    }
    let probes: Vec<Prefix> = (0..1_000u64)
        .map(|i| Prefix::of(addrs[(i * 37 % addrs.len() as u64) as usize], 64))
        .collect();
    h.bench("count_within_1k_probes", || {
        let mut acc = 0u64;
        for &p in &probes {
            acc += t.count_within(p);
        }
        black_box(acc)
    });
}
