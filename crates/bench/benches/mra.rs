//! Microbenchmarks for MRA aggregate-count and curve computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use v6census_addr::Addr;
use v6census_core::spatial::{MraCurve, MraResolution};
use v6census_trie::{AddrSet, AggregateCounts};

fn population(n: u64) -> AddrSet {
    AddrSet::from_iter((0..n).map(|i| {
        let hi = 0x2400_4000_0000_0000u64 | (i % 10_007) << 16;
        let lo = i.wrapping_mul(0x9e37_79b9_7f4a_7c15) & !(1 << 57);
        Addr(((hi as u128) << 64) | lo as u128)
    }))
}

fn bench_aggregate_counts(c: &mut Criterion) {
    let mut g = c.benchmark_group("aggregate_counts");
    g.sample_size(10);
    for n in [10_000u64, 100_000, 1_000_000] {
        let set = population(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &set, |b, set| {
            b.iter(|| black_box(AggregateCounts::of(set).n(64)))
        });
    }
    g.finish();
}

fn bench_curves_and_signature(c: &mut Criterion) {
    let set = population(100_000);
    c.bench_function("mra_all_curves_100k", |b| {
        b.iter(|| {
            let mra = MraCurve::of(&set);
            let mut acc = 0.0;
            for res in [
                MraResolution::SingleBit,
                MraResolution::Nybble,
                MraResolution::Segment16,
            ] {
                acc += mra.curve(res).iter().map(|&(_, r)| r).sum::<f64>();
            }
            black_box(acc)
        })
    });
    let mra = MraCurve::of(&set);
    c.bench_function("privacy_signature", |b| {
        b.iter(|| black_box(mra.privacy_signature().matches()))
    });
}

criterion_group!(benches, bench_aggregate_counts, bench_curves_and_signature);
criterion_main!(benches);
