//! Microbenchmarks for MRA aggregate-count and curve computation.

use v6census_addr::Addr;
use v6census_bench::timing::{black_box, Harness};
use v6census_core::spatial::{MraCurve, MraResolution};
use v6census_trie::{AddrSet, AggregateCounts};

fn population(n: u64) -> AddrSet {
    AddrSet::from_iter((0..n).map(|i| {
        let hi = 0x2400_4000_0000_0000u64 | (i % 10_007) << 16;
        let lo = i.wrapping_mul(0x9e37_79b9_7f4a_7c15) & !(1 << 57);
        Addr(((hi as u128) << 64) | lo as u128)
    }))
}

fn main() {
    let h = Harness::from_env();

    for n in [10_000u64, 100_000, 1_000_000] {
        let set = population(n);
        h.bench(&format!("aggregate_counts/{n}"), || {
            black_box(AggregateCounts::of(&set).n(64))
        });
    }

    let set = population(100_000);
    h.bench("mra_all_curves_100k", || {
        let mra = MraCurve::of(&set);
        let mut acc = 0.0;
        for res in [
            MraResolution::SingleBit,
            MraResolution::Nybble,
            MraResolution::Segment16,
        ] {
            acc += mra.curve(res).iter().map(|&(_, r)| r).sum::<f64>();
        }
        black_box(acc)
    });
    let mra = MraCurve::of(&set);
    h.bench("privacy_signature", || {
        black_box(mra.privacy_signature().matches())
    });
}
