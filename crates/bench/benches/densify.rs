//! The DESIGN.md ablation: the paper's trie-based densify (§5.2.3)
//! versus the sort-based fast path (footnote 3), on identical inputs.

use v6census_addr::Addr;
use v6census_bench::timing::{black_box, Harness};
use v6census_trie::{dense_prefixes_at, AddrSet, RadixTree};

/// A population with realistic clustering: dense server blocks plus
/// sparse privacy addresses.
fn population(n: u64) -> AddrSet {
    let mut addrs = Vec::with_capacity(n as usize);
    for i in 0..n {
        if i % 4 == 0 {
            // Dense block member: sequential low IIDs.
            let block = (i / 256) % 64;
            addrs.push(Addr(
                ((0x2604_0000_0000_0000u128 + block as u128) << 64) | (1 + i % 256) as u128,
            ));
        } else {
            // Sparse pseudorandom address.
            let hi = 0x2a00_8000_0000_0000u64 | (i % 4_001) << 8;
            let lo = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            addrs.push(Addr(((hi as u128) << 64) | lo as u128));
        }
    }
    AddrSet::from_iter(addrs)
}

fn main() {
    let h = Harness::from_env();

    for n in [10_000u64, 100_000] {
        let set = population(n);
        h.bench(&format!("densify_2_at_112/sorted_scan/{n}"), || {
            black_box(dense_prefixes_at(&set, 2, 112).len())
        });
        h.bench(&format!("densify_2_at_112/trie_general/{n}"), || {
            let mut t = RadixTree::new();
            for a in set.iter() {
                t.insert_addr(a, 1);
            }
            black_box(t.densify(2, 112).len())
        });
        h.bench(&format!("densify_2_at_112/trie_in_place/{n}"), || {
            let mut t = RadixTree::new();
            for a in set.iter() {
                t.insert(v6census_addr::Prefix::of(a, 112), 1);
            }
            black_box(t.densify_in_place(2, 112).len())
        });
    }

    let set = population(50_000);
    h.bench("table3_parameter_space", || {
        let mut total = 0usize;
        for class in v6census_census::tables::table3_classes() {
            total += class.dense_prefixes(&set).len();
        }
        black_box(total)
    });
}
