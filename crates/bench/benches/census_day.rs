//! End-to-end benchmark: generate one synthetic day and run the census
//! culling over it — the dominant cost of every experiment regenerator.

use v6census_bench::timing::{black_box, Harness};
use v6census_census::DaySummary;
use v6census_synth::world::epochs;
use v6census_synth::{World, WorldConfig};

fn main() {
    let h = Harness::from_env();

    for scale in [0.05f64, 0.25] {
        let world = World::standard(WorldConfig { seed: 1, scale });
        h.bench(&format!("world_day_log/{scale}"), || {
            black_box(world.day_log(epochs::mar2015()).len())
        });
    }

    let world = World::standard(WorldConfig {
        seed: 1,
        scale: 0.25,
    });
    let log = world.day_log(epochs::mar2015());
    h.bench("day_summary_cull", || {
        black_box(DaySummary::from_log(&log).other.len())
    });

    let rt = world.routing_table(epochs::mar2015());
    h.bench("asn_attribution_full_day", || {
        let mut n = 0usize;
        for e in &log.entries {
            if rt.longest_match(e.addr).is_some() {
                n += 1;
            }
        }
        black_box(n)
    });
}
