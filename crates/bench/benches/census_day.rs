//! End-to-end benchmark: generate one synthetic day and run the census
//! culling over it — the dominant cost of every experiment regenerator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use v6census_census::DaySummary;
use v6census_synth::world::epochs;
use v6census_synth::{World, WorldConfig};

fn bench_day_log(c: &mut Criterion) {
    let mut g = c.benchmark_group("world_day_log");
    g.sample_size(10);
    for scale in [0.05f64, 0.25] {
        let world = World::standard(WorldConfig { seed: 1, scale });
        g.bench_with_input(BenchmarkId::from_parameter(scale), &world, |b, world| {
            b.iter(|| black_box(world.day_log(epochs::mar2015()).len()))
        });
    }
    g.finish();
}

fn bench_ingest(c: &mut Criterion) {
    let world = World::standard(WorldConfig {
        seed: 1,
        scale: 0.25,
    });
    let log = world.day_log(epochs::mar2015());
    c.bench_function("day_summary_cull", |b| {
        b.iter(|| black_box(DaySummary::from_log(&log).other.len()))
    });
}

fn bench_routing(c: &mut Criterion) {
    let world = World::standard(WorldConfig {
        seed: 1,
        scale: 0.25,
    });
    let rt = world.routing_table(epochs::mar2015());
    let log = world.day_log(epochs::mar2015());
    c.bench_function("asn_attribution_full_day", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for e in &log.entries {
                if rt.longest_match(e.addr).is_some() {
                    n += 1;
                }
            }
            black_box(n)
        })
    });
}

criterion_group!(benches, bench_day_log, bench_ingest, bench_routing);
criterion_main!(benches);
