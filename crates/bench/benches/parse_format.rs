//! Microbenchmarks for address parsing and formatting.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use v6census_addr::Addr;

fn inputs() -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..1_000u64 {
        // A mix of compressed, full, and embedded-v4 forms.
        let a = Addr(((0x2001_0db8_0000_0000u128 + (i % 7) as u128) << 64) | (i as u128) << 17);
        out.push(a.to_string());
        out.push(a.to_fixed_hex());
    }
    out.push("2001:db8:4137:9e76:3031:f3fd:bbdd:2c2a".into());
    out.push("::ffff:192.0.2.1".into());
    out
}

fn bench_parse(c: &mut Criterion) {
    let texts = inputs();
    c.bench_function("parse_presentation_format", |b| {
        b.iter(|| {
            let mut acc = 0u128;
            for t in &texts {
                if let Ok(a) = t.parse::<Addr>() {
                    acc ^= a.0;
                }
            }
            black_box(acc)
        })
    });
    c.bench_function("parse_fixed_hex", |b| {
        let fixed: Vec<String> = (0..1_000u64)
            .map(|i| Addr((i as u128) << 32 | 0x2001 << 112).to_fixed_hex())
            .collect();
        b.iter(|| {
            let mut acc = 0u128;
            for t in &fixed {
                acc ^= Addr::from_fixed_hex(t).unwrap().0;
            }
            black_box(acc)
        })
    });
}

fn bench_format(c: &mut Criterion) {
    let addrs: Vec<Addr> = (0..1_000u64)
        .map(|i| Addr(((0x2400_4000u128) << 96) | (i as u128) << 48 | i as u128))
        .collect();
    c.bench_function("format_rfc5952", |b| {
        b.iter_batched(
            || addrs.clone(),
            |addrs| {
                let mut n = 0usize;
                for a in addrs {
                    n += a.to_string().len();
                }
                black_box(n)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_classify(c: &mut Criterion) {
    let addrs: Vec<Addr> = (0..1_000u64)
        .map(|i| {
            let iid = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            Addr(((0x2001_0db8u128) << 96) | iid as u128)
        })
        .collect();
    c.bench_function("scheme_classify", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for &a in &addrs {
                n += v6census_addr::scheme::classify(a).label().len();
            }
            black_box(n)
        })
    });
}

criterion_group!(benches, bench_parse, bench_format, bench_classify);
criterion_main!(benches);
