//! Microbenchmarks for address parsing and formatting.

use v6census_addr::Addr;
use v6census_bench::timing::{black_box, Harness};

fn inputs() -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..1_000u64 {
        // A mix of compressed, full, and embedded-v4 forms.
        let a = Addr(((0x2001_0db8_0000_0000u128 + (i % 7) as u128) << 64) | (i as u128) << 17);
        out.push(a.to_string());
        out.push(a.to_fixed_hex());
    }
    out.push("2001:db8:4137:9e76:3031:f3fd:bbdd:2c2a".into());
    out.push("::ffff:192.0.2.1".into());
    out
}

fn main() {
    let h = Harness::from_env();

    let texts = inputs();
    h.bench("parse_presentation_format", || {
        let mut acc = 0u128;
        for t in &texts {
            if let Ok(a) = t.parse::<Addr>() {
                acc ^= a.0;
            }
        }
        black_box(acc)
    });

    let fixed: Vec<String> = (0..1_000u64)
        .map(|i| Addr((i as u128) << 32 | 0x2001 << 112).to_fixed_hex())
        .collect();
    h.bench("parse_fixed_hex", || {
        let mut acc = 0u128;
        for t in &fixed {
            acc ^= Addr::from_fixed_hex(t).unwrap().0;
        }
        black_box(acc)
    });

    let addrs: Vec<Addr> = (0..1_000u64)
        .map(|i| Addr(((0x2400_4000u128) << 96) | (i as u128) << 48 | i as u128))
        .collect();
    h.bench("format_rfc5952", || {
        let mut n = 0usize;
        for &a in &addrs {
            n += a.to_string().len();
        }
        black_box(n)
    });

    let addrs: Vec<Addr> = (0..1_000u64)
        .map(|i| {
            let iid = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            Addr(((0x2001_0db8u128) << 96) | iid as u128)
        })
        .collect();
    h.bench("scheme_classify", || {
        let mut n = 0usize;
        for &a in &addrs {
            n += v6census_addr::scheme::classify(a).label().len();
        }
        black_box(n)
    });
}
