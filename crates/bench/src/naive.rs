//! Naive reference implementations of the pipeline's optimized kernels.
//!
//! These are the shapes the workspace shipped *before* the
//! allocation-effect pass made the hot paths allocation-free: a
//! `Box`-per-node radix trie, a recursive per-node subtree-sum densify,
//! and a union-of-intersections stability window. They exist so both
//! `pipeline_speed` (the before/after benchmark) and the
//! pipeline-equivalence test can assert the optimized kernels produce
//! byte-identical outputs — the speedups in `BENCH_pipeline.json` are
//! only claimed against these on equivalent results.
//!
//! None of this is under the lint config's `[hot]` scope: allocating per
//! node and per witness day is the entire point of the reference.

use v6census_addr::{Addr, Prefix};
use v6census_core::temporal::{DailyObservations, Day, StabilityParams};
use v6census_trie::{AddrSet, DensePrefix};

/// One heap-allocated trie node — the pre-arena layout.
pub struct NaiveNode {
    /// Canonical prefix stored at this node.
    pub prefix: Prefix,
    /// Observation count at exactly this prefix.
    pub count: u64,
    /// Child subtrees by next bit.
    pub children: [Option<Box<NaiveNode>>; 2],
}

impl NaiveNode {
    fn leaf(prefix: Prefix, count: u64) -> NaiveNode {
        NaiveNode {
            prefix,
            count,
            children: [None, None],
        }
    }
}

/// A `Box`-per-node path-compressed radix trie: one allocation per
/// structural node and pointer-chasing descent, mirroring
/// `RadixTree::try_insert`'s four cases exactly.
#[derive(Default)]
pub struct NaiveTrie {
    root: Option<Box<NaiveNode>>,
}

impl NaiveTrie {
    /// Inserts a host (/128) observation, like `RadixTree::insert_addr`.
    pub fn insert_addr(&mut self, a: Addr, count: u64) {
        Self::insert(&mut self.root, Prefix::host(a), count);
    }

    /// The recursive twin of `RadixTree::try_insert` — same four cases,
    /// same branch-bit choices, one `Box::new` per structural node. The
    /// occupant is taken by value up front so every case is total.
    fn insert(slot: &mut Option<Box<NaiveNode>>, p: Prefix, count: u64) {
        let Some(mut node) = slot.take() else {
            *slot = Some(Box::new(NaiveNode::leaf(p, count)));
            return;
        };
        if node.prefix == p {
            node.count = node.count.saturating_add(count);
            *slot = Some(node);
            return;
        }
        if node.prefix.contains(p) {
            let which = usize::from(p.addr().bit(usize::from(node.prefix.len())));
            Self::insert(&mut node.children[which], p, count);
            *slot = Some(node);
            return;
        }
        if p.contains(node.prefix) {
            let bit = usize::from(node.prefix.addr().bit(usize::from(p.len())));
            let mut new_node = NaiveNode::leaf(p, count);
            new_node.children[bit] = Some(node);
            *slot = Some(Box::new(new_node));
            return;
        }
        let cpl = p
            .addr()
            .common_prefix_len(node.prefix.addr())
            .min(p.len())
            .min(node.prefix.len());
        let branch_prefix = Prefix::new(p.addr(), cpl);
        let old_bit = usize::from(node.prefix.addr().bit(usize::from(cpl)));
        let new_bit = usize::from(p.addr().bit(usize::from(cpl)));
        let mut branch = NaiveNode::leaf(branch_prefix, 0);
        branch.children[old_bit] = Some(node);
        branch.children[new_bit] = Some(Box::new(NaiveNode::leaf(p, count)));
        *slot = Some(Box::new(branch));
    }

    /// Preorder `(prefix, count)` entries, matching `RadixTree::entries`.
    pub fn entries(&self) -> Vec<(Prefix, u64)> {
        let mut out = Vec::new();
        fn walk(node: &Option<Box<NaiveNode>>, out: &mut Vec<(Prefix, u64)>) {
            let Some(n) = node else { return };
            if n.count > 0 {
                out.push((n.prefix, n.count));
            }
            walk(&n.children[0], out);
            walk(&n.children[1], out);
        }
        walk(&self.root, &mut out);
        out
    }

    /// Subtree sum by full recursion — recomputed at every visited node
    /// by [`NaiveTrie::densify`], which is exactly the `O(n·depth)` cost
    /// the memoized BFS pass in `RadixTree::densify` removed.
    fn subtree_sum(node: &NaiveNode) -> u64 {
        let mut s = node.count;
        for c in node.children.iter().flatten() {
            s = s.saturating_add(Self::subtree_sum(c));
        }
        s
    }

    /// The pre-optimization densify: same least-specific-dense-prefix
    /// math and pruning as `RadixTree::densify`, but with per-node
    /// recursive sums.
    pub fn densify(&self, n: u64, p: u8) -> Vec<DensePrefix> {
        let mut out = Vec::new();
        fn walk(node: &NaiveNode, lo: u8, n: u64, p: u8, out: &mut Vec<DensePrefix>) {
            let s = NaiveTrie::subtree_sum(node);
            if s < n {
                return;
            }
            let k_max = 63u32.saturating_sub((s / n).leading_zeros());
            let l_min = p.saturating_sub(k_max as u8);
            let hi = node.prefix.len().min(127);
            if l_min <= hi {
                out.push(DensePrefix {
                    prefix: Prefix::new(node.prefix.addr(), l_min.max(lo)),
                    count: s,
                });
                return;
            }
            for c in node.children.iter().flatten() {
                walk(c, node.prefix.len().saturating_add(1), n, p, out);
            }
        }
        if let Some(root) = &self.root {
            walk(root, 0, n, p, &mut out);
        }
        out.sort();
        out
    }
}

/// The pre-optimization `stable_on`: one `intersection` and one `union`
/// allocation per witness day in the ±window, versus the merged-cursor
/// single-output scan in `DailyObservations::stable_on`.
pub fn naive_stable_on(
    obs: &DailyObservations,
    reference: Day,
    params: &StabilityParams,
) -> AddrSet {
    let active = obs.on(reference);
    if active.is_empty() {
        return AddrSet::new();
    }
    let lo = reference - params.back as i32;
    let hi = reference + params.fwd as i32;
    let min_d = (params.n + params.slew_tolerance) as i32;
    let mut stable = AddrSet::new();
    for d in lo.range_inclusive(hi) {
        if (d - reference).abs() < min_d {
            continue;
        }
        if let Some(s) = obs.get(d) {
            stable = stable.union(&active.intersection(s));
        }
    }
    stable
}
