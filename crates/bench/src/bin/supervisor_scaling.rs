//! Benchmarks the supervised census pipeline at `--jobs` ∈ {1, 2, 4, 8}
//! on a fixed synthetic world, verifying on the way that every parallel
//! run is equivalent to the serial one, and emits a
//! `BENCH_supervisor.json` point so later PRs can track the
//! parallel-speedup trajectory. The JSON is written to the repository
//! root unconditionally; CI uploads it as an artifact and commits
//! track it as the baseline.
//!
//! `BENCH_QUICK=1` trims samples for CI smoke runs.

use std::fmt::Write as _;
use std::time::Instant;
use v6census_bench::Opts;
use v6census_census::supervisor::{run_census, PipelineConfig};
use v6census_synth::world::epochs;
use v6census_synth::{FaultInjector, FaultSpec};

/// The `cpus` value recorded in an existing baseline JSON, if any —
/// parsed textually so the guard needs no JSON dependency.
fn baseline_cpus(json: &str) -> Option<usize> {
    let rest = json.split("\"cpus\":").nth(1)?;
    rest.trim_start()
        .split(|c: char| !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()
}

fn main() {
    // `--force` is ours, not `Opts`'s (whose parser aborts on unknown
    // flags): strip it before delegating.
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let force = argv.iter().any(|a| a == "--force");
    argv.retain(|a| a != "--force");
    let opts = Opts::parse_from(argv);
    let world = opts.world();
    let reference = epochs::mar2015();
    let (first, last) = (reference - 7, reference + 7);

    let dir = std::env::temp_dir().join(format!("v6census-supbench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create log dir");
    eprintln!(
        "[supervisor_scaling] writing 15 day logs at scale {}…",
        opts.scale
    );
    FaultInjector::new(0xbe7c)
        .write_day_files(&world, first, last, &dir, &FaultSpec { faults: vec![] })
        .expect("write day logs");

    let samples = if std::env::var_os("BENCH_QUICK").is_some() {
        2
    } else {
        5
    };
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let jobs_axis = [1usize, 2, 4, 8];
    // (requested jobs, effective parallelism, min ms, median ms)
    let mut points: Vec<(usize, usize, f64, f64)> = Vec::new();
    let mut serial_key: Option<String> = None;

    for &jobs in &jobs_axis {
        let mut cfg = PipelineConfig {
            reference: Some(reference),
            ..PipelineConfig::default()
        };
        cfg.supervisor.jobs = jobs;
        let mut times: Vec<f64> = Vec::new();
        let mut stage_walls: Vec<(String, u64)> = Vec::new();
        for _ in 0..samples {
            let start = Instant::now();
            let run = run_census(&dir, &cfg).expect("clean bench run");
            times.push(start.elapsed().as_secs_f64() * 1e3);
            assert!(
                run.overall_quality().is_exact(),
                "bench world must run clean"
            );
            stage_walls = run
                .manifest
                .stages
                .iter()
                .map(|s| (s.stage.clone(), s.wall_millis))
                .collect();
            // Equivalence gate: a parallel run must be indistinguishable
            // from the serial one in everything but wall time.
            let key = run.manifest.equivalence_key();
            match &serial_key {
                None => serial_key = Some(key),
                Some(k) => assert_eq!(k, &key, "--jobs={jobs} diverged from --jobs=1"),
            }
        }
        let breakdown: Vec<String> = stage_walls
            .iter()
            .map(|(s, ms)| format!("{s}={ms}ms"))
            .collect();
        eprintln!("  [jobs={jobs}] stages: {}", breakdown.join(" "));
        times.sort_by(|a, b| a.total_cmp(b));
        let (min, median) = (times[0], times[times.len() / 2]);
        let effective = jobs.min(cpus);
        println!(
            "jobs={jobs:<2} (effective {effective:<2}) min {min:>9.2}ms   median {median:>9.2}ms"
        );
        points.push((jobs, effective, min, median));
    }

    // A speedup headline is only honest when the widest point actually
    // got its requested parallelism; on a machine with fewer CPUs the
    // jobs=8 point is really a jobs=min(8,cpus) point and the ratio
    // says nothing about the code's scaling.
    let max_jobs = *jobs_axis.last().unwrap_or(&1);
    let constrained = max_jobs > cpus;
    let speedup = points[0].2 / points.last().unwrap().2;
    if constrained {
        eprintln!(
            "[supervisor_scaling] note: jobs={max_jobs} exceeds {cpus} cpu(s); \
             speedup headline suppressed (measured ratio {speedup:.2}x is CPU-bound, not code-bound)"
        );
    } else {
        println!(
            "speedup at jobs={max_jobs} vs jobs=1 (min-over-min): {speedup:.2}x on {cpus} cpu(s)"
        );
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"supervisor_scaling\",");
    let _ = writeln!(json, "  \"scale\": {},", opts.scale);
    let _ = writeln!(json, "  \"seed\": {},", opts.seed);
    let _ = writeln!(json, "  \"days\": 15,");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(json, "  \"cpus\": {cpus},");
    let _ = writeln!(json, "  \"constrained_by_cpus\": {constrained},");
    let _ = writeln!(json, "  \"points\": [");
    for (i, (jobs, effective, min, median)) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"jobs\": {jobs}, \"effective_jobs\": {effective}, \"wall_ms_min\": {min:.3}, \"wall_ms_median\": {median:.3}}}{comma}"
        );
    }
    if constrained {
        // No speedup key at all: a number measured under CPU starvation
        // would be read as the code's scaling limit by trajectory
        // tooling, so it is omitted rather than emitted-with-caveat.
        let _ = writeln!(json, "  ]");
    } else {
        let _ = writeln!(json, "  ],");
        let _ = writeln!(json, "  \"speedup_jobs8_vs_jobs1\": {speedup:.3}");
    }
    json.push_str("}\n");
    opts.emit("BENCH_supervisor.json", &json);

    // A baseline captured with real parallelism must not be silently
    // clobbered by a run on a 1-CPU box, where every jobs>1 point is
    // CPU-starved and the speedup column is meaningless. `--force`
    // overrides for deliberate downgrades.
    let prior_cpus =
        std::fs::read_to_string(v6census_bench::baseline_path("BENCH_supervisor.json"))
            .ok()
            .as_deref()
            .and_then(baseline_cpus);
    match prior_cpus {
        Some(prior) if prior > 1 && cpus == 1 && !force => {
            eprintln!(
                "[supervisor_scaling] baseline kept: existing point was measured on \
                 {prior} cpus, this run had 1; pass --force to overwrite anyway"
            );
        }
        _ => v6census_bench::write_baseline("BENCH_supervisor.json", &json),
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(test)]
mod tests {
    use super::baseline_cpus;

    #[test]
    fn parses_cpus_from_baseline_json() {
        assert_eq!(baseline_cpus("{\n  \"cpus\": 8,\n}"), Some(8));
        assert_eq!(baseline_cpus("{\"cpus\":1}"), Some(1));
        assert_eq!(baseline_cpus("{\"scale\": 0.25}"), None);
        assert_eq!(baseline_cpus(""), None);
    }
}
