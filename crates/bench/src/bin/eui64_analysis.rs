//! Regenerates the **EUI-64 analyses**: §6.1.1's not-3d-stable EUI-64
//! breakdown (paper: 62% of IIDs in >1 address; 14% also in a 3d-stable
//! address) and §6.2.1's /64-spread of EUI-64 IIDs per ISP (paper:
//! JP 99.6% in one /64 per week, EU 67.4%).

use v6census_bench::{Opts, Snapshot};
use v6census_census::experiments::eui64_analysis;
use v6census_synth::world::{asns, epochs};

fn main() {
    let opts = Opts::parse();
    eprintln!("[eui64] building 3-epoch snapshot at scale {}…", opts.scale);
    let snap = Snapshot::build(&opts);
    // The paper ran the not-stable analysis on the Sep 17-23, 2014 week.
    let e = eui64_analysis(&snap.census, &snap.rt, epochs::sep2014());
    let mut report = format!(
        "Sep 2014 week, EUI-64 addresses not 3d-stable : {}\n\
         IID appears in >1 address                     : {:.1}%  (paper: 62%)\n\
         IID also appears in a 3d-stable address       : {:.1}%  (paper: 14%)\n\n",
        e.not_stable_eui64,
        e.frac_iid_multi_addr * 100.0,
        e.frac_iid_in_stable * 100.0
    );
    // §6.2.1: per-ISP /64 spread, March 2015 week.
    let e15 = eui64_analysis(&snap.census, &snap.rt, epochs::mar2015());
    report.push_str("EUI-64 IIDs observed in exactly one /64 (Mar 2015 week):\n");
    for (label, asn, paper) in [
        ("JP ISP", asns::JP_ISP, "99.6%"),
        ("EU ISP", asns::EU_ISP, "67.4%"),
        ("US broadband", asns::US_BROADBAND, "—"),
        ("US mobile A", asns::MOBILE_A, "—"),
    ] {
        if let Some(share) = e15.single_64_share_by_asn.get(&asn) {
            report.push_str(&format!(
                "  {label:<14}: {:.1}%  (paper: {paper})\n",
                share * 100.0
            ));
        }
    }
    opts.emit("eui64_analysis.txt", &report);
}
