//! Regenerates **Figure 2**: MRA plots for (a) a university-style network
//! dominated by privacy addresses in sparse /64s and (b) a telco-style
//! network with dense low-bit blocks.

use v6census_bench::{Opts, Snapshot};
use v6census_census::figures::MraFigure;
use v6census_census::plot::{ascii_mra, tsv_mra};
use v6census_core::temporal::Day;
use v6census_synth::world::{asns, epochs};
use v6census_trie::AddrSet;

fn main() {
    let opts = Opts::parse();
    eprintln!("[fig2] building March 2015 week at scale {}…", opts.scale);
    let snap = Snapshot::build_mar2015(&opts);
    let week: Vec<Day> = epochs::mar2015()
        .range_inclusive(epochs::mar2015() + 6)
        .collect();
    let week_set = snap.census.other_over(week.iter().copied());

    let by_asn = snap.rt.group_by_asn(&week_set);
    let empty = AddrSet::new();
    let uni = by_asn.get(&(asns::UNIVERSITY_FIRST + 1)).unwrap_or(&empty);
    let jp = by_asn.get(&asns::JP_ISP).unwrap_or(&empty);

    let fa = MraFigure::of("(a) university (cf. paper's US university)", uni);
    let fb = MraFigure::of("(b) JP telco", jp);
    opts.emit("fig2a_university.txt", &ascii_mra(&fa));
    opts.emit("fig2a_university.tsv", &tsv_mra(&fa));
    opts.emit("fig2b_jp_telco.txt", &ascii_mra(&fb));
    opts.emit("fig2b_jp_telco.tsv", &tsv_mra(&fb));
}
