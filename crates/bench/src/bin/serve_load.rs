//! Load-tests the `v6census serve` daemon at two (or more) concurrency
//! points against an in-process instance with a deliberately small
//! connection cap, and emits a `BENCH_serve.json` point recording p50
//! and p99 latency plus the shed rate at each point. The low-concurrency
//! point characterises happy-path latency; the high point pushes past
//! `max_connections` so the shed path (503 + Retry-After) shows up in
//! the numbers instead of hiding as unbounded queueing.
//!
//! `BENCH_QUICK=1` trims the request count for CI smoke runs.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use v6census_bench::Opts;
use v6census_census::serve::{spawn, ServeConfig};
use v6census_synth::chaos::http_get;
use v6census_synth::faults::day_file_name;
use v6census_synth::world::epochs;

const DAYS: i32 = 5;
const MAX_CONNECTIONS: usize = 16;
const CLIENT_AXIS: [usize; 3] = [4, 16, 32];

/// One client's eye view of one request.
enum Sample {
    /// 200 with the round-trip wall time.
    Ok(f64),
    /// Explicit 503 shed.
    Shed,
    /// Any other status.
    Other(u16),
    /// Transport-level failure (refused, reset, timed out).
    Error,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let opts = Opts::parse();
    let world = opts.world();

    let dir = std::env::temp_dir().join(format!("v6census-servebench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create log dir");
    eprintln!(
        "[serve_load] writing {DAYS} day logs at scale {}…",
        opts.scale
    );
    for offset in 0..DAYS {
        let day = epochs::mar2015() + offset;
        std::fs::write(dir.join(day_file_name(day)), world.day_log(day).to_text())
            .expect("write day log");
    }

    let cfg = ServeConfig {
        source_dir: dir.clone(),
        max_connections: MAX_CONNECTIONS,
        poll_interval: Duration::from_millis(20),
        ..ServeConfig::default()
    };
    let handle = spawn(cfg).expect("daemon must start");
    let addr = handle.addr();
    let deadline = Instant::now() + Duration::from_secs(30);
    while handle.snapshot().generation < DAYS as u64 {
        assert!(Instant::now() < deadline, "daemon never ingested the world");
        std::thread::sleep(Duration::from_millis(10));
    }

    let per_client = if std::env::var_os("BENCH_QUICK").is_some() {
        10
    } else {
        60
    };
    let paths = [
        "/stats",
        "/stable/2001:db8::1",
        "/classify/2001:db8::/32",
        "/healthz",
    ];

    // clients, total, ok, shed, errors, p50, p99
    let mut points: Vec<(usize, usize, usize, usize, usize, f64, f64)> = Vec::new();
    for &clients in &CLIENT_AXIS {
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                std::thread::spawn(move || {
                    let mut samples = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let path = paths[(c + i) % paths.len()];
                        let start = Instant::now();
                        let sample = match http_get(addr, path, Duration::from_secs(5)) {
                            Ok((200, _)) => Sample::Ok(start.elapsed().as_secs_f64() * 1e3),
                            Ok((503, _)) => Sample::Shed,
                            Ok((status, _)) => Sample::Other(status),
                            Err(_) => Sample::Error,
                        };
                        samples.push(sample);
                    }
                    samples
                })
            })
            .collect();
        let samples: Vec<Sample> = workers
            .into_iter()
            .flat_map(|w| w.join().expect("client thread must not panic"))
            .collect();

        let mut latencies: Vec<f64> = Vec::new();
        let (mut shed, mut errors) = (0usize, 0usize);
        for s in &samples {
            match s {
                Sample::Ok(ms) => latencies.push(*ms),
                Sample::Shed => shed += 1,
                Sample::Other(status) => panic!("well-formed query drew {status}"),
                Sample::Error => errors += 1,
            }
        }
        latencies.sort_by(|a, b| a.total_cmp(b));
        let (p50, p99) = (percentile(&latencies, 0.50), percentile(&latencies, 0.99));
        let total = samples.len();
        println!(
            "clients={clients:<3} requests={total:<5} ok={:<5} shed={shed:<4} errors={errors:<3} p50 {p50:>8.3}ms   p99 {p99:>8.3}ms",
            latencies.len()
        );
        points.push((clients, total, latencies.len(), shed, errors, p50, p99));
        // Let lingering connections from this burst fully close before
        // the next point so sheds attribute to their own concurrency.
        std::thread::sleep(Duration::from_millis(200));
    }

    let report = handle.shutdown();
    println!(
        "daemon drain: {} (shed {} over the whole run)",
        if report.clean {
            "clean"
        } else {
            "abandoned connections"
        },
        report.metrics.shed
    );

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"serve_load\",");
    let _ = writeln!(json, "  \"scale\": {},", opts.scale);
    let _ = writeln!(json, "  \"seed\": {},", opts.seed);
    let _ = writeln!(json, "  \"days\": {DAYS},");
    let _ = writeln!(json, "  \"requests_per_client\": {per_client},");
    let _ = writeln!(json, "  \"max_connections\": {MAX_CONNECTIONS},");
    let _ = writeln!(json, "  \"cpus\": {cpus},");
    let _ = writeln!(json, "  \"points\": [");
    for (i, (clients, total, ok, shed, errors, p50, p99)) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let shed_rate = *shed as f64 / (*total).max(1) as f64;
        let _ = writeln!(
            json,
            "    {{\"clients\": {clients}, \"requests\": {total}, \"ok\": {ok}, \"shed\": {shed}, \"errors\": {errors}, \"shed_rate\": {shed_rate:.4}, \"p50_ms\": {p50:.3}, \"p99_ms\": {p99:.3}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    opts.emit("BENCH_serve.json", &json);
    v6census_bench::write_baseline("BENCH_serve.json", &json);

    let _ = std::fs::remove_dir_all(&dir);
}
