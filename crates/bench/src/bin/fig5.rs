//! Regenerates **Figure 5**: (a) per-ASN count CCDFs, (b) 16-bit-segment
//! aggregation-ratio distributions across BGP prefixes, and (c)–(h) the
//! six MRA plots touring the active IPv6 address space.

use v6census_bench::{Opts, Snapshot};
use v6census_census::figures::{
    AsnDistributionFigure, MraFigure, PopulationFigure, SegmentRatioFigure,
};
use v6census_census::plot::{ascii_ccdf, ascii_mra, tsv_ccdf, tsv_mra};
use v6census_core::temporal::Day;
use v6census_synth::world::{asns, epochs};
use v6census_trie::AddrSet;

fn main() {
    let opts = Opts::parse();
    eprintln!("[fig5] building 3-epoch snapshot at scale {}…", opts.scale);
    let snap = Snapshot::build(&opts);
    let d15 = epochs::mar2015();
    let week15: Vec<Day> = d15.range_inclusive(d15 + 6).collect();
    let week_set = snap.census.other_over(week15.iter().copied());
    let eui_week = snap.census.eui64_over(week15.iter().copied());

    // (a) per-ASN distributions: actives, /64s, EUI-64, 6m-stable /64s.
    let six_month_64s = snap
        .census
        .other64_daily()
        .epoch_stable(
            d15.range_inclusive(d15 + 6),
            epochs::sep2014().range_inclusive(epochs::sep2014() + 6),
        )
        .stable;
    let f5a = AsnDistributionFigure::figure5a(&snap.rt, &week_set, &eui_week, &six_month_64s);
    let mut a_txt = format!("{} active ASNs\n", f5a.active_asns);
    a_txt.push_str(&ascii_ccdf(&PopulationFigure {
        series: f5a.series.clone(),
    }));
    opts.emit("fig5a_asn_ccdf.txt", &a_txt);
    opts.emit(
        "fig5a_asn_ccdf.tsv",
        &tsv_ccdf(&PopulationFigure { series: f5a.series }),
    );

    // (b) 16-bit segment aggregation ratio distributions per BGP prefix.
    let f5b = SegmentRatioFigure::figure5b(&snap.rt, &week_set, 20);
    let mut b_txt = format!(
        "16-bit segment aggregation distributions, {} BGP prefixes (≥20 addrs)\n",
        f5b.prefixes
    );
    for (p, stats) in &f5b.boxes {
        b_txt.push_str(&format!("bits {:>3}-{:<3}  {}\n", p, p + 16, stats));
    }
    opts.emit("fig5b_segment_boxes.txt", &b_txt);

    // (c)–(h): the six MRA plots.
    let by_asn = snap.rt.group_by_asn(&week_set);
    let empty = AddrSet::new();
    let asn_set = |a: u32| by_asn.get(&a).unwrap_or(&empty);

    // (c) all native clients.
    let c = MraFigure::of("(c) all native IPv6 client addrs", &week_set);
    // (d) 6to4 clients.
    let sixtofour = {
        let mut days = Vec::new();
        for d in &week15 {
            if let Some(s) = snap.census.summary(*d) {
                days.push(s.sixtofour.clone());
            }
        }
        AddrSet::union_all(days.iter())
    };
    let dd = MraFigure::of("(d) 6to4 client addrs", &sixtofour);
    // (e) US mobile carrier.
    let e = MraFigure::of("(e) US mobile carrier", asn_set(asns::MOBILE_A));
    // (f) EU ISP prefix.
    let f = MraFigure::of("(f) EU ISP prefix", asn_set(asns::EU_ISP));
    // (g) the dense university department /64.
    let uni0 = asn_set(asns::UNIVERSITY_FIRST);
    let dept64 = {
        let mut best: Option<(v6census_addr::Prefix, usize)> = None;
        for d in v6census_trie::dense_prefixes_at(uni0, 2, 64) {
            let c = d.count as usize;
            if best.map(|(_, n)| c > n).unwrap_or(true) {
                best = Some((d.prefix, c));
            }
        }
        let target = best.map(|(p, _)| p);
        AddrSet::from_iter(
            uni0.iter()
                .filter(|&a| target.map(|p| p.contains_addr(a)).unwrap_or(false)),
        )
    };
    let g = MraFigure::of("(g) EU univ. dept prefix (1 /64)", &dept64);
    // (h) JP ISP prefix.
    let h = MraFigure::of("(h) JP ISP prefix", asn_set(asns::JP_ISP));

    for (name, fig) in [
        ("fig5c_all", &c),
        ("fig5d_6to4", &dd),
        ("fig5e_us_mobile", &e),
        ("fig5f_eu_isp", &f),
        ("fig5g_univ_dept", &g),
        ("fig5h_jp_isp", &h),
    ] {
        opts.emit(&format!("{name}.txt"), &ascii_mra(fig));
        opts.emit(&format!("{name}.tsv"), &tsv_mra(fig));
    }

    // §6.2.1's deduction: "by comparison to the same plot over only 1
    // day (not shown), we can deduce that this network seems to
    // dynamically assign /64s" — the mobile pool segment fills up over a
    // week far beyond one day's utilization.
    let mob_day = {
        let day_set = snap.census.other_daily().on(d15);
        let by_asn_day = snap.rt.group_by_asn(&day_set);
        by_asn_day.get(&asns::MOBILE_A).cloned().unwrap_or_default()
    };
    let e1 = MraFigure::of("(e′) US mobile carrier — one day", &mob_day);
    opts.emit("fig5e_us_mobile_1day.txt", &ascii_mra(&e1));
    let day64 = mob_day.map_prefix(64).len();
    let week64 = asn_set(asns::MOBILE_A).map_prefix(64).len();
    opts.emit(
        "fig5e_pool_utilization.txt",
        &format!(
            "mobile pool /64s active: {} in one day vs {} over the week (×{:.2})\n\
             — the weekly growth without subscriber growth is the dynamic-pool signature.\n",
            day64,
            week64,
            week64 as f64 / day64.max(1) as f64
        ),
    );
}
