//! Regenerates **Figure 4**: the March 2015 stability time series —
//! active addresses and /64s per day, with overlaps against the March 17
//! and March 23 reference days.

use v6census_bench::{Opts, Snapshot};
use v6census_census::figures::StabilityFigure;
use v6census_census::plot::{ascii_stability, tsv_stability};
use v6census_synth::world::epochs;

fn main() {
    let opts = Opts::parse();
    eprintln!("[fig4] building March 2015 window at scale {}…", opts.scale);
    let snap = Snapshot::build_mar2015(&opts);
    let ref_a = epochs::mar2015(); // Mar 17
    let ref_b = ref_a + 6; // Mar 23

    let addrs = StabilityFigure::of(snap.census.other_daily(), ref_a, ref_b);
    let p64s = StabilityFigure::of(snap.census.other64_daily(), ref_a, ref_b);
    opts.emit("fig4a_addr_stability.txt", &ascii_stability(&addrs));
    opts.emit("fig4a_addr_stability.tsv", &tsv_stability(&addrs));
    opts.emit("fig4b_64_stability.txt", &ascii_stability(&p64s));
    opts.emit("fig4b_64_stability.tsv", &tsv_stability(&p64s));
}
