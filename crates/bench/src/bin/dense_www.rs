//! Regenerates **§6.2.2's WWW-client density numbers**: 2@/112-dense
//! prefixes over the March 17, 2015 actives (paper: 128 K prefixes,
//! 1.38 M client addresses therein, 8.39 B possible targets).

use v6census_bench::{Opts, Snapshot};
use v6census_census::experiments::dense_www;
use v6census_census::humane::si;
use v6census_synth::world::epochs;

fn main() {
    let opts = Opts::parse();
    eprintln!(
        "[dense_www] building March 2015 window at scale {}…",
        opts.scale
    );
    let snap = Snapshot::build_mar2015(&opts);
    let r = dense_www(&snap.census, epochs::mar2015());
    let report = format!(
        "2@/112-dense prefixes   : {}   (paper: 128K)\n\
         client addrs therein    : {}   (paper: 1.38M)\n\
         possible target addrs   : {}   (paper: 8.39B)\n\
         address density         : {:.10}\n",
        si(r.dense_prefixes as u128),
        si(r.covered_addresses as u128),
        si(r.possible_addresses),
        r.density()
    );
    opts.emit("dense_www.txt", &report);
}
