//! Runs the entire reproduction — every table, figure, and in-text
//! experiment — and writes one consolidated report (the source of
//! EXPERIMENTS.md's measured column).
//!
//! Cost: generates 63 daily logs once and reuses them everywhere.

use v6census_bench::{epoch_specs, Opts, Snapshot};
use v6census_census::experiments::{
    classifier_evaluation, dense_www, eui64_analysis, ptr_harvest, router_discovery, sample_every,
};
use v6census_census::figures::{
    asn_highlights, AsnDistributionFigure, MraFigure, PopulationFigure, SegmentRatioFigure,
    StabilityFigure,
};
use v6census_census::humane::si;
use v6census_census::plot::{
    ascii_ccdf, ascii_mra, ascii_stability, tsv_ccdf, tsv_mra, tsv_stability,
};
use v6census_census::svg::{svg_ccdf, svg_mra};
use v6census_census::tables::{table1, Table2, Table3};
use v6census_core::temporal::{Day, StabilityParams};
use v6census_synth::router::ProbeSim;
use v6census_synth::world::{asns, epochs};
use v6census_trie::AddrSet;

fn main() {
    let opts = Opts::parse();
    let t0 = std::time::Instant::now();
    eprintln!(
        "[repro-all] building 3-epoch snapshot at scale {} (63 daily logs)…",
        opts.scale
    );
    let snap = Snapshot::build(&opts);
    eprintln!("[repro-all] snapshot ready in {:.1?}", t0.elapsed());
    let specs = epoch_specs();
    let params = StabilityParams::three_day();
    let d15 = epochs::mar2015();
    let week15: Vec<Day> = d15.range_inclusive(d15 + 6).collect();
    let week_set = snap.census.other_over(week15.iter().copied());

    // ---- Table 1 -------------------------------------------------------
    let (t1d, t1w) = table1(&snap.census, &specs);
    opts.emit("table1a_per_day.txt", &t1d.render());
    opts.emit("table1b_per_week.txt", &t1w.render());

    // ---- Table 2 -------------------------------------------------------
    for (name, caption, obs, weekly) in [
        (
            "table2a_addr_daily.txt",
            "(a) Stability of IPv6 addresses per day",
            snap.census.other_daily(),
            false,
        ),
        (
            "table2b_64_daily.txt",
            "(b) Stability of /64 prefixes per day",
            snap.census.other64_daily(),
            false,
        ),
        (
            "table2c_addr_weekly.txt",
            "(c) Stability of IPv6 addresses per week",
            snap.census.other_daily(),
            true,
        ),
        (
            "table2d_64_weekly.txt",
            "(d) Stability of /64 prefixes per week",
            snap.census.other64_daily(),
            true,
        ),
    ] {
        let t = if weekly {
            Table2::weekly(caption, obs, &specs, params)
        } else {
            Table2::daily(caption, obs, &specs, params)
        };
        opts.emit(name, &t.render());
    }

    // ---- Table 3 -------------------------------------------------------
    let sim = ProbeSim::new(&snap.world, d15);
    let stable14 = snap
        .census
        .other_daily()
        .stable_over_week(epochs::mar2014(), &params)
        .stable
        .union(
            &snap
                .census
                .other_daily()
                .stable_over_week(epochs::sep2014(), &params)
                .stable,
        );
    let actives15 = snap.census.other_daily().on(d15);
    let mut clients = sample_every(&stable14, (12_000.0 * opts.scale) as usize);
    clients.extend(sample_every(&actives15, (6_000.0 * opts.scale) as usize));
    let routers = sim.router_dataset(&clients);
    let t3 = Table3::compute(&routers);
    opts.emit(
        "table3_dense_routers.txt",
        &format!(
            "Dense prefixes for {} router addrs\n\n{}",
            si(routers.len() as u128),
            t3.render()
        ),
    );

    // ---- Figures -------------------------------------------------------
    let by_asn = snap.rt.group_by_asn(&week_set);
    let empty = AddrSet::new();
    let asn_set = |a: u32| by_asn.get(&a).cloned().unwrap_or_else(AddrSet::new);
    let _ = &empty;

    let fig2a = MraFigure::of("(2a) university", &asn_set(asns::UNIVERSITY_FIRST + 1));
    let fig2b = MraFigure::of("(2b) JP telco", &asn_set(asns::JP_ISP));
    opts.emit("fig2a_university.txt", &ascii_mra(&fig2a));
    opts.emit("fig2a_university.tsv", &tsv_mra(&fig2a));
    opts.emit("fig2a_university.svg", &svg_mra(&fig2a));
    opts.emit("fig2b_jp_telco.txt", &ascii_mra(&fig2b));
    opts.emit("fig2b_jp_telco.tsv", &tsv_mra(&fig2b));
    opts.emit("fig2b_jp_telco.svg", &svg_mra(&fig2b));

    let fig3 = PopulationFigure::figure3(&week_set);
    opts.emit("fig3_population_ccdf.txt", &ascii_ccdf(&fig3));
    opts.emit("fig3_population_ccdf.tsv", &tsv_ccdf(&fig3));
    opts.emit(
        "fig3_population_ccdf.svg",
        &svg_ccdf("Figure 3: aggregate populations", &fig3),
    );

    // Restrict the series to the March 2015 window — the snapshot also
    // holds the 2014 epochs, which belong to Table 2, not Figure 4.
    let window = |mut f: StabilityFigure| -> StabilityFigure {
        let keep: Vec<usize> = f
            .days
            .iter()
            .enumerate()
            .filter(|&(_, &day)| day >= d15 - 7 && day <= d15 + 13)
            .map(|(i, _)| i)
            .collect();
        f.days = keep.iter().map(|&i| f.days[i]).collect();
        f.active = keep.iter().map(|&i| f.active[i]).collect();
        f.ref_a = keep.iter().map(|&i| f.ref_a[i]).collect();
        f.ref_b = keep.iter().map(|&i| f.ref_b[i]).collect();
        f
    };
    let fig4a = window(StabilityFigure::of(snap.census.other_daily(), d15, d15 + 6));
    let fig4b = window(StabilityFigure::of(
        snap.census.other64_daily(),
        d15,
        d15 + 6,
    ));
    opts.emit("fig4a_addr_stability.txt", &ascii_stability(&fig4a));
    opts.emit("fig4a_addr_stability.tsv", &tsv_stability(&fig4a));
    opts.emit("fig4b_64_stability.txt", &ascii_stability(&fig4b));
    opts.emit("fig4b_64_stability.tsv", &tsv_stability(&fig4b));

    let eui_week = snap.census.eui64_over(week15.iter().copied());
    let six_month_64s = snap
        .census
        .other64_daily()
        .epoch_stable(
            d15.range_inclusive(d15 + 6),
            epochs::sep2014().range_inclusive(epochs::sep2014() + 6),
        )
        .stable;
    let f5a = AsnDistributionFigure::figure5a(&snap.rt, &week_set, &eui_week, &six_month_64s);
    opts.emit(
        "fig5a_asn_ccdf.txt",
        &format!(
            "{} active ASNs\n{}",
            f5a.active_asns,
            ascii_ccdf(&PopulationFigure {
                series: f5a.series.clone()
            })
        ),
    );
    opts.emit(
        "fig5a_asn_ccdf.tsv",
        &tsv_ccdf(&PopulationFigure { series: f5a.series }),
    );

    let f5b = SegmentRatioFigure::figure5b(&snap.rt, &week_set, 20);
    let mut b_txt = format!("{} BGP prefixes (≥20 addrs)\n", f5b.prefixes);
    for (p, stats) in &f5b.boxes {
        b_txt.push_str(&format!("bits {:>3}-{:<3}  {}\n", p, p + 16, stats));
    }
    opts.emit("fig5b_segment_boxes.txt", &b_txt);

    let sixtofour_week = {
        let sets: Vec<AddrSet> = week15
            .iter()
            .filter_map(|d| snap.census.summary(*d))
            .map(|s| s.sixtofour.clone())
            .collect();
        AddrSet::union_all(sets.iter())
    };
    let dept64 = {
        let uni0 = asn_set(asns::UNIVERSITY_FIRST);
        let best = v6census_trie::dense_prefixes_at(&uni0, 2, 64)
            .into_iter()
            .max_by_key(|d| d.count)
            .map(|d| d.prefix);
        AddrSet::from_iter(
            uni0.iter()
                .filter(|&a| best.map(|p| p.contains_addr(a)).unwrap_or(false)),
        )
    };
    for (name, fig) in [
        (
            "fig5c_all",
            MraFigure::of("(5c) all native clients", &week_set),
        ),
        (
            "fig5d_6to4",
            MraFigure::of("(5d) 6to4 clients", &sixtofour_week),
        ),
        (
            "fig5e_us_mobile",
            MraFigure::of("(5e) US mobile carrier", &asn_set(asns::MOBILE_A)),
        ),
        (
            "fig5f_eu_isp",
            MraFigure::of("(5f) EU ISP", &asn_set(asns::EU_ISP)),
        ),
        (
            "fig5g_univ_dept",
            MraFigure::of("(5g) EU univ. dept /64", &dept64),
        ),
        (
            "fig5h_jp_isp",
            MraFigure::of("(5h) JP ISP", &asn_set(asns::JP_ISP)),
        ),
    ] {
        opts.emit(&format!("{name}.txt"), &ascii_mra(&fig));
        opts.emit(&format!("{name}.tsv"), &tsv_mra(&fig));
        opts.emit(&format!("{name}.svg"), &svg_mra(&fig));
    }

    // ---- In-text experiments --------------------------------------------
    let rd = router_discovery(
        &snap.world,
        &snap.census,
        d15,
        (24_000.0 * opts.scale) as usize,
    );
    opts.emit(
        "router_discovery.txt",
        &format!(
            "targets/strategy {} | baseline {} | stable {} | improvement {:+.1}% (paper +129%)\n",
            rd.targets_per_strategy,
            rd.baseline_routers,
            rd.stable_routers,
            rd.improvement_pct()
        ),
    );

    let e14 = eui64_analysis(&snap.census, &snap.rt, epochs::sep2014());
    let e15 = eui64_analysis(&snap.census, &snap.rt, d15);
    let mut eui_txt = format!(
        "not-3d-stable EUI-64 (Sep'14 wk): {} | IID in >1 addr {:.1}% (62%) | IID in stable addr {:.1}% (14%)\n",
        e14.not_stable_eui64,
        e14.frac_iid_multi_addr * 100.0,
        e14.frac_iid_in_stable * 100.0
    );
    for (label, asn, paper) in [
        ("JP ISP", asns::JP_ISP, "99.6%"),
        ("EU ISP", asns::EU_ISP, "67.4%"),
    ] {
        if let Some(share) = e15.single_64_share_by_asn.get(&asn) {
            eui_txt.push_str(&format!(
                "{label} IIDs in one /64: {:.1}% (paper {paper})\n",
                share * 100.0
            ));
        }
    }
    opts.emit("eui64_analysis.txt", &eui_txt);

    let dw = dense_www(&snap.census, d15);
    opts.emit(
        "dense_www.txt",
        &format!(
            "2@/112-dense: {} prefixes | {} addrs | {} possible | density {:.7}\n",
            si(dw.dense_prefixes as u128),
            si(dw.covered_addresses as u128),
            si(dw.possible_addresses),
            dw.density()
        ),
    );

    let ph = ptr_harvest(&snap.world, &routers, &actives15, d15);
    opts.emit(
        "ptr_harvest.txt",
        &format!(
            "3@/120-dense {} prefixes | possible {} | sweep names {} | client names {} | additional {} (paper +47K)\n",
            ph.dense_prefixes,
            si(ph.possible_addresses),
            si(ph.names_from_sweep as u128),
            si(ph.names_from_clients as u128),
            si(ph.additional_names() as u128)
        ),
    );

    let h = asn_highlights(&snap.rt, &week_set, &six_month_64s);
    let ev = classifier_evaluation(&snap.world, &snap.census, d15);
    opts.emit(
        "highlights.txt",
        &format!(
            "top-5 ASNs {:?}\ntop-5 /64 share {:.1}% (85%) | top-5 addr share {:.1}% (59%) | 6m-common in one ASN {:.1}% (74%)\n\
             malone recall {:.1}% (≈73%) | stable lookalikes {:.1}% | privacy among 3d-stable {:.3}% (≈0)\n",
            h.top5_asns,
            h.top5_share_64s * 100.0,
            h.top5_share_addrs * 100.0,
            h.six_month_single_asn_share * 100.0,
            ev.malone_recall * 100.0,
            ev.stable_lookalike_rate * 100.0,
            ev.stable_privacy_contamination * 100.0
        ),
    );

    eprintln!("[repro-all] complete in {:.1?}", t0.elapsed());
}
