//! Regenerates the **§1 highlight numbers**: top-5 ASN concentration
//! (paper: 85% of active /64s, 59% of addresses) and the share of
//! 6-month-common /64s in a single ASN (paper: 74%), plus the
//! ground-truth classifier evaluation the synthetic world enables.

use v6census_bench::{Opts, Snapshot};
use v6census_census::experiments::classifier_evaluation;
use v6census_census::figures::asn_highlights;
use v6census_core::temporal::Day;
use v6census_synth::world::epochs;

fn main() {
    let opts = Opts::parse();
    eprintln!(
        "[highlights] building 3-epoch snapshot at scale {}…",
        opts.scale
    );
    let snap = Snapshot::build(&opts);
    let d15 = epochs::mar2015();
    let week15: Vec<Day> = d15.range_inclusive(d15 + 6).collect();
    let week = snap.census.other_over(week15.iter().copied());
    let six_month_64s = snap
        .census
        .other64_daily()
        .epoch_stable(
            d15.range_inclusive(d15 + 6),
            epochs::sep2014().range_inclusive(epochs::sep2014() + 6),
        )
        .stable;
    let h = asn_highlights(&snap.rt, &week, &six_month_64s);
    let mut report = format!(
        "top-5 ASNs (by client addrs)  : {:?}\n\
         top-5 share of active /64s    : {:.1}%  (paper: 85%)\n\
         top-5 share of active addrs   : {:.1}%  (paper: 59%)\n\
         6m-common /64s in one ASN     : {:.1}%  (paper: 74%)\n\n",
        h.top5_asns,
        h.top5_share_64s * 100.0,
        h.top5_share_addrs * 100.0,
        h.six_month_single_asn_share * 100.0
    );

    let eval = classifier_evaluation(&snap.world, &snap.census, d15);
    report.push_str(&format!(
        "ground truth (synthetic only):\n\
         true privacy addrs (daily)    : {}\n\
         Malone content-only recall    : {:.1}%  (Malone 2008 expected ≈73%)\n\
         stable addrs that look random : {:.1}%  (content-only blind spot)\n\
         privacy among 3d-stable       : {:.3}%  (paper's premise: ≈0)\n",
        eval.true_privacy,
        eval.malone_recall * 100.0,
        eval.stable_lookalike_rate * 100.0,
        eval.stable_privacy_contamination * 100.0
    ));
    opts.emit("highlights.txt", &report);
}
