//! Regenerates the **§6.1.1 experiment**: using 3d-stable addresses as
//! TTL-limited probe targets discovers substantially more router
//! addresses than the IPv4-style baseline (resolvers + random actives).
//! The paper reports +129%.

use v6census_bench::{Opts, Snapshot};
use v6census_census::experiments::router_discovery;
use v6census_synth::world::epochs;

fn main() {
    let opts = Opts::parse();
    eprintln!(
        "[router_discovery] building March 2015 window at scale {}…",
        opts.scale
    );
    let snap = Snapshot::build_mar2015(&opts);
    let targets = (24_000.0 * opts.scale) as usize;
    let r = router_discovery(&snap.world, &snap.census, epochs::mar2015(), targets);
    let report = format!(
        "targets per strategy : {}\n\
         baseline routers     : {}\n\
         3d-stable routers    : {}\n\
         improvement          : {:+.1}%  (paper: +129%)\n",
        r.targets_per_strategy,
        r.baseline_routers,
        r.stable_routers,
        r.improvement_pct()
    );
    opts.emit("router_discovery.txt", &report);
}
