//! Regenerates **Figure 3**: aggregate population CCDFs for the March
//! 2015 week — 32/48/112-aggregates of addresses and 32/48-aggregates of
//! /64s.

use v6census_bench::{Opts, Snapshot};
use v6census_census::figures::PopulationFigure;
use v6census_census::plot::{ascii_ccdf, tsv_ccdf};
use v6census_synth::world::epochs;

fn main() {
    let opts = Opts::parse();
    eprintln!("[fig3] building March 2015 week at scale {}…", opts.scale);
    let snap = Snapshot::build_mar2015(&opts);
    let d = epochs::mar2015();
    let week = snap.census.other_over(d.range_inclusive(d + 6));
    eprintln!(
        "[fig3] {} addrs, {} /64s in the week",
        week.len(),
        week.map_prefix(64).len()
    );
    let fig = PopulationFigure::figure3(&week);
    opts.emit("fig3_population_ccdf.txt", &ascii_ccdf(&fig));
    opts.emit("fig3_population_ccdf.tsv", &tsv_ccdf(&fig));
}
