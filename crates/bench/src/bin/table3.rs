//! Regenerates **Table 3**: dense prefixes identified at the paper's
//! twelve density classes over a router-address dataset collected with
//! TTL-limited probes (§4.2).
//!
//! The probe campaign follows §4.2: recursive resolvers, CDN locations,
//! and a large sample of WWW client addresses, including the 3d-stable
//! subset from the two 2014 epochs (the paper's 12 M of 18 M targets).

use v6census_bench::{Opts, Snapshot};
use v6census_census::experiments::sample_every;
use v6census_census::tables::Table3;
use v6census_core::temporal::StabilityParams;
use v6census_synth::router::ProbeSim;
use v6census_synth::world::epochs;

fn main() {
    let opts = Opts::parse();
    eprintln!("[table3] building snapshot at scale {}…", opts.scale);
    let snap = Snapshot::build(&opts);
    let sim = ProbeSim::new(&snap.world, epochs::mar2015());

    // Client target assembly: stable addresses from Mar/Sep 2014 plus
    // random actives, scaled like the paper's 18M (12M stable) at 1/1000.
    let params = StabilityParams::three_day();
    let stable14 = snap
        .census
        .other_daily()
        .stable_over_week(epochs::mar2014(), &params)
        .stable
        .union(
            &snap
                .census
                .other_daily()
                .stable_over_week(epochs::sep2014(), &params)
                .stable,
        );
    let actives = snap.census.other_daily().on(epochs::mar2015());
    let stable_want = (12_000.0 * opts.scale) as usize;
    let random_want = (6_000.0 * opts.scale) as usize;
    let mut clients = sample_every(&stable14, stable_want);
    clients.extend(sample_every(&actives, random_want));
    eprintln!(
        "[table3] probing {} resolver + 500 CDN + {} client targets…",
        sim.resolver_targets().len(),
        clients.len()
    );

    let routers = sim.router_dataset(&clients);
    let t3 = Table3::compute(&routers);
    let header = format!(
        "Dense prefixes identified at various densities for {} router addrs\n\n",
        v6census_census::humane::si(routers.len() as u128)
    );
    opts.emit("table3_dense_routers.txt", &(header + &t3.render()));
}
