//! Benchmarks the full `v6census-lint` pipeline — scan, lex, symbol
//! table, call graph, per-file rules, semantic rules — over the
//! workspace at HEAD, and emits a `BENCH_lint.json` point (files
//! scanned, findings, wall ms) so later PRs can track lint throughput
//! as the rule set and the codebase grow.
//!
//! `BENCH_QUICK=1` trims samples for CI smoke runs.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use lint::engine::{lint_workspace, load_config, SeverityMap};
use v6census_bench::Opts;

fn main() {
    let opts = Opts::parse();
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let cfg = load_config(&root).expect("lint.toml parses");
    let severities = SeverityMap::default();

    let samples = if std::env::var_os("BENCH_QUICK").is_some() {
        3
    } else {
        10
    };

    // Warm-up pass; also the source of the scan/finding counts.
    let report = lint_workspace(&root, &cfg, &severities).expect("workspace lints");
    let files_scanned = report.files_scanned;
    let findings = report.diagnostics.len();
    let suppressed = report.suppressed_count();

    let mut times: Vec<f64> = Vec::new();
    for _ in 0..samples {
        let start = Instant::now();
        let run = lint_workspace(&root, &cfg, &severities).expect("workspace lints");
        times.push(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            run.files_scanned, files_scanned,
            "scan must be deterministic"
        );
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let (min, median) = (times[0], times[times.len() / 2]);
    let files_per_sec = f64::from(u32::try_from(files_scanned).unwrap_or(u32::MAX)) / (min / 1e3);

    println!(
        "lint_workspace  {files_scanned} files, {findings} findings ({suppressed} suppressed)"
    );
    println!(
        "                min {min:>8.2}ms   median {median:>8.2}ms   {files_per_sec:>8.0} files/s"
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"lint_speed\",");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(json, "  \"files_scanned\": {files_scanned},");
    let _ = writeln!(json, "  \"findings\": {findings},");
    let _ = writeln!(json, "  \"suppressed\": {suppressed},");
    let _ = writeln!(json, "  \"wall_ms_min\": {min:.3},");
    let _ = writeln!(json, "  \"wall_ms_median\": {median:.3},");
    let _ = writeln!(json, "  \"files_per_sec\": {files_per_sec:.1}");
    json.push_str("}\n");
    opts.emit("BENCH_lint.json", &json);
}
