//! Benchmarks the full `v6census-lint` pipeline — scan, lex, symbol
//! table, call graph, per-file rules, semantic rules — over the
//! workspace at HEAD, plus the R002 abstract-interpretation pass in
//! isolation, and emits a `BENCH_lint.json` point (files scanned,
//! findings, wall ms, dataflow timings and summary counters) so later
//! PRs can track lint throughput as the rule set and the codebase grow.
//! The JSON is written to the repository root unconditionally; CI
//! uploads it as an artifact and commits track it as the baseline.
//!
//! `BENCH_QUICK=1` trims samples for CI smoke runs.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use lint::callgraph::CallGraph;
use lint::engine::{discover, lint_workspace, load_config, SeverityMap};
use lint::rules::Workspace;
use lint::symbols::SymbolTable;
use v6census_bench::Opts;

fn main() {
    let opts = Opts::parse();
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let cfg = load_config(&root).expect("lint.toml parses");
    let severities = SeverityMap::default();

    let samples = if std::env::var_os("BENCH_QUICK").is_some() {
        3
    } else {
        10
    };

    // Warm-up pass; also the source of the scan/finding counts.
    let report = lint_workspace(&root, &cfg, &severities).expect("workspace lints");
    let files_scanned = report.files_scanned;
    let findings = report.diagnostics.len();
    let suppressed = report.suppressed_count();
    let discharged = report.discharged_count();

    let mut times: Vec<f64> = Vec::new();
    for _ in 0..samples {
        let start = Instant::now();
        let run = lint_workspace(&root, &cfg, &severities).expect("workspace lints");
        times.push(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            run.files_scanned, files_scanned,
            "scan must be deterministic"
        );
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let (min, median) = (times[0], times[times.len() / 2]);
    let files_per_sec = f64::from(u32::try_from(files_scanned).unwrap_or(u32::MAX)) / (min / 1e3);

    // The R002 dataflow pass in isolation: build the shared inputs
    // (scan, symbols, call graph) once, then time `analyze` alone so
    // the abstract-interpretation cost is tracked separately from the
    // full pipeline. The lint crate itself takes no wall-clock reads
    // (determinism discipline), so the timing lives out here.
    let paths = discover(&root).expect("workspace discovery");
    let files: Vec<_> = paths
        .iter()
        .map(|p| {
            let rel = p
                .strip_prefix(&root)
                .unwrap_or(p)
                .to_string_lossy()
                .replace('\\', "/");
            let text = std::fs::read_to_string(p).expect("read source file");
            lint::scan::scan(p.clone(), rel, &text)
        })
        .collect();
    let symbols = SymbolTable::build(&files);
    let calls = CallGraph::build(&symbols, &files);
    let ws = Workspace {
        files: &files,
        symbols: &symbols,
        calls: &calls,
    };
    let mut flow_times: Vec<f64> = Vec::new();
    let mut stats = lint::dataflow::DataflowStats::default();
    for _ in 0..samples {
        let start = Instant::now();
        let res = lint::dataflow::analyze(&ws, &cfg);
        flow_times.push(start.elapsed().as_secs_f64() * 1e3);
        stats = res.stats;
    }
    flow_times.sort_by(|a, b| a.total_cmp(b));
    let (flow_min, flow_median) = (flow_times[0], flow_times[flow_times.len() / 2]);

    // The R003/R004 concurrency pass in isolation, over the same
    // shared inputs: lock registry, guard scopes, effect lattice, and
    // the lock-order graph, timed separately like the dataflow above.
    let mut lock_times: Vec<f64> = Vec::new();
    let mut lock_stats = lint::locks::LockStats::default();
    for _ in 0..samples {
        let start = Instant::now();
        let res = lint::locks::analyze(&ws, &cfg);
        lock_times.push(start.elapsed().as_secs_f64() * 1e3);
        lock_stats = res.stats;
    }
    lock_times.sort_by(|a, b| a.total_cmp(b));
    let (lock_min, lock_median) = (lock_times[0], lock_times[lock_times.len() / 2]);

    // The R005/R006 allocation-effect pass in isolation, again over the
    // same shared inputs: per-function allocation summaries, hot-loop
    // obligations, and capacity-discipline proofs.
    let mut alloc_times: Vec<f64> = Vec::new();
    let mut alloc_stats = lint::allocs::AllocStats::default();
    for _ in 0..samples {
        let start = Instant::now();
        let res = lint::allocs::analyze(&ws, &cfg);
        alloc_times.push(start.elapsed().as_secs_f64() * 1e3);
        alloc_stats = res.stats;
    }
    alloc_times.sort_by(|a, b| a.total_cmp(b));
    let (alloc_min, alloc_median) = (alloc_times[0], alloc_times[alloc_times.len() / 2]);

    println!(
        "lint_workspace  {files_scanned} files, {findings} findings ({suppressed} suppressed, {discharged} discharged)"
    );
    println!(
        "                min {min:>8.2}ms   median {median:>8.2}ms   {files_per_sec:>8.0} files/s"
    );
    println!(
        "dataflow (R002) {} fns, {} passes, {} summaries, {}/{} obligations proven",
        stats.fns_analyzed, stats.passes, stats.summaries, stats.proven, stats.obligations
    );
    println!("                min {flow_min:>8.2}ms   median {flow_median:>8.2}ms");
    println!(
        "locks (R003/4)  {} fns, {} locks, {} edges (acyclic: {}), {}/{} obligations proven",
        lock_stats.fns_summarized,
        lock_stats.locks_found,
        lock_stats.lock_edges,
        lock_stats.acyclic,
        lock_stats.proven,
        lock_stats.effect_obligations
    );
    println!("                min {lock_min:>8.2}ms   median {lock_median:>8.2}ms");
    println!(
        "allocs (R005/6) {} fns ({} no-alloc, {} amortized, {} per-call), {} hot entries, {} loops, {}/{} loop + {}/{} capacity obligations proven",
        alloc_stats.fns_summarized,
        alloc_stats.no_alloc_fns,
        alloc_stats.amortized_fns,
        alloc_stats.per_call_fns,
        alloc_stats.hot_entry_points,
        alloc_stats.loops_scanned,
        alloc_stats.hot_loop_proven,
        alloc_stats.hot_loop_obligations,
        alloc_stats.capacity_proven,
        alloc_stats.capacity_obligations
    );
    println!("                min {alloc_min:>8.2}ms   median {alloc_median:>8.2}ms");

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"lint_speed\",");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(json, "  \"files_scanned\": {files_scanned},");
    let _ = writeln!(json, "  \"findings\": {findings},");
    let _ = writeln!(json, "  \"suppressed\": {suppressed},");
    let _ = writeln!(json, "  \"discharged\": {discharged},");
    let _ = writeln!(json, "  \"wall_ms_min\": {min:.3},");
    let _ = writeln!(json, "  \"wall_ms_median\": {median:.3},");
    let _ = writeln!(json, "  \"files_per_sec\": {files_per_sec:.1},");
    let _ = writeln!(json, "  \"dataflow\": {{");
    let _ = writeln!(json, "    \"fns_analyzed\": {},", stats.fns_analyzed);
    let _ = writeln!(json, "    \"passes\": {},", stats.passes);
    let _ = writeln!(json, "    \"summaries\": {},", stats.summaries);
    let _ = writeln!(json, "    \"obligations\": {},", stats.obligations);
    let _ = writeln!(json, "    \"proven\": {},", stats.proven);
    let _ = writeln!(json, "    \"wall_ms_min\": {flow_min:.3},");
    let _ = writeln!(json, "    \"wall_ms_median\": {flow_median:.3}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"locks\": {{");
    let _ = writeln!(
        json,
        "    \"fns_summarized\": {},",
        lock_stats.fns_summarized
    );
    let _ = writeln!(json, "    \"locks_found\": {},", lock_stats.locks_found);
    let _ = writeln!(json, "    \"lock_edges\": {},", lock_stats.lock_edges);
    let _ = writeln!(json, "    \"acyclic\": {},", lock_stats.acyclic);
    let _ = writeln!(
        json,
        "    \"effect_obligations\": {},",
        lock_stats.effect_obligations
    );
    let _ = writeln!(json, "    \"proven\": {},", lock_stats.proven);
    let _ = writeln!(json, "    \"wall_ms_min\": {lock_min:.3},");
    let _ = writeln!(json, "    \"wall_ms_median\": {lock_median:.3}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"allocs\": {{");
    let _ = writeln!(
        json,
        "    \"fns_summarized\": {},",
        alloc_stats.fns_summarized
    );
    let _ = writeln!(json, "    \"no_alloc_fns\": {},", alloc_stats.no_alloc_fns);
    let _ = writeln!(
        json,
        "    \"amortized_fns\": {},",
        alloc_stats.amortized_fns
    );
    let _ = writeln!(json, "    \"per_call_fns\": {},", alloc_stats.per_call_fns);
    let _ = writeln!(
        json,
        "    \"hot_entry_points\": {},",
        alloc_stats.hot_entry_points
    );
    let _ = writeln!(
        json,
        "    \"loops_scanned\": {},",
        alloc_stats.loops_scanned
    );
    let _ = writeln!(
        json,
        "    \"hot_loop_obligations\": {},",
        alloc_stats.hot_loop_obligations
    );
    let _ = writeln!(
        json,
        "    \"hot_loop_proven\": {},",
        alloc_stats.hot_loop_proven
    );
    let _ = writeln!(
        json,
        "    \"capacity_obligations\": {},",
        alloc_stats.capacity_obligations
    );
    let _ = writeln!(
        json,
        "    \"capacity_proven\": {},",
        alloc_stats.capacity_proven
    );
    let _ = writeln!(json, "    \"wall_ms_min\": {alloc_min:.3},");
    let _ = writeln!(json, "    \"wall_ms_median\": {alloc_median:.3}");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    opts.emit("BENCH_lint.json", &json);
    v6census_bench::write_baseline("BENCH_lint.json", &json);
}
