//! Regenerates **§6.2.3's PTR harvest**: sweeping the possible addresses
//! of the 3@/120-dense class of the router dataset yields many additional
//! `ip6.arpa` names beyond querying active WWW clients (paper: +47 K).

use v6census_bench::{Opts, Snapshot};
use v6census_census::experiments::{ptr_harvest, sample_every};
use v6census_census::humane::si;
use v6census_core::temporal::StabilityParams;
use v6census_synth::router::ProbeSim;
use v6census_synth::world::epochs;

fn main() {
    let opts = Opts::parse();
    eprintln!(
        "[ptr_harvest] building March 2015 window at scale {}…",
        opts.scale
    );
    let snap = Snapshot::build_mar2015(&opts);
    let d = epochs::mar2015();
    let sim = ProbeSim::new(&snap.world, d);
    let stable = snap
        .census
        .other_daily()
        .stable_on(d, &StabilityParams::three_day());
    let clients = snap.census.other_daily().on(d);
    let mut targets = sample_every(&stable, (3_000.0 * opts.scale) as usize);
    targets.extend(sample_every(&clients, (1_500.0 * opts.scale) as usize));
    let routers = sim.router_dataset(&targets);
    let h = ptr_harvest(&snap.world, &routers, &clients, d);
    let report = format!(
        "router dataset            : {} addrs\n\
         3@/120-dense prefixes     : {}\n\
         possible (query universe) : {}   (paper: 2.12M)\n\
         names from dense sweep    : {}\n\
         names from clients only   : {}\n\
         additional names          : {}   (paper: +47K)\n",
        si(routers.len() as u128),
        si(h.dense_prefixes as u128),
        si(h.possible_addresses),
        si(h.names_from_sweep as u128),
        si(h.names_from_clients as u128),
        si(h.additional_names() as u128),
    );
    opts.emit("ptr_harvest.txt", &report);
}
