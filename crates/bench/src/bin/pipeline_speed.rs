//! Benchmarks the optimized census-pipeline kernels against the naive
//! reference implementations they replaced, and emits a committed
//! `BENCH_pipeline.json` point with per-stage wall-ms at scale 0.25 and
//! 1.0 — gated on byte-identical outputs.
//!
//! The "before" column is not a straw man: each naive implementation is
//! the shape the workspace actually shipped before the allocation-effect
//! PR made the hot paths allocation-free —
//!
//! * **trie_build** — a `Box`-per-node radix trie (one heap allocation
//!   per structural node, pointer-chasing descent) versus the
//!   index-packed arena [`RadixTree`].
//! * **densify** — per-node *recursive* subtree sums, `O(n·depth)` over
//!   compressed 128-bit paths, versus the one-pass memoized BFS sums
//!   inside [`RadixTree::densify`].
//! * **stability_window** — the union-of-intersections ±7-day scan that
//!   built and dropped two fresh sets per witness day, versus the
//!   merged-cursor [`DailyObservations::stable_on`].
//!
//! Every stage's before/after outputs are Debug-formatted and compared
//! byte-for-byte; any mismatch fails the run (exit 1), so the speedups
//! in the JSON are only ever claimed for equivalent results.
//!
//! `BENCH_QUICK=1` trims samples for CI smoke runs.

use std::fmt::Write as _;
use std::time::Instant;

use v6census_addr::Addr;
use v6census_bench::naive::{naive_stable_on, NaiveTrie};
use v6census_bench::Opts;
use v6census_core::temporal::{DailyObservations, Day, StabilityParams};
use v6census_synth::world::epochs;
use v6census_synth::{World, WorldConfig};
use v6census_trie::{AddrSet, RadixTree};

/// Density parameters for the densify stage: at least `DENSIFY_N`
/// addresses at density `DENSIFY_N`/2^(128−`DENSIFY_P`).
const DENSIFY_N: u64 = 4;
const DENSIFY_P: u8 = 64;

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

struct Stage {
    name: &'static str,
    before_ms_min: f64,
    before_ms_median: f64,
    after_ms_min: f64,
    after_ms_median: f64,
    equivalent: bool,
}

impl Stage {
    fn speedup(&self) -> f64 {
        if self.after_ms_min > 0.0 {
            self.before_ms_min / self.after_ms_min
        } else {
            f64::INFINITY
        }
    }
}

/// Times `f` over `samples` runs (plus one warm-up) and returns
/// `(min_ms, median_ms)`.
fn time_ms<T>(samples: usize, mut f: impl FnMut() -> T) -> (f64, f64) {
    std::hint::black_box(f());
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    (times[0], times[times.len() / 2])
}

fn run_scale(scale: f64, seed: u64, samples: usize) -> (Vec<Stage>, usize) {
    let world = World::standard(WorldConfig { seed, scale });
    let reference = epochs::mar2015();
    let params = StabilityParams::three_day();

    // ±7-day coverage for every day of the reference week.
    let mut obs = DailyObservations::new();
    for day in (reference - 7).range_inclusive(reference + 13) {
        obs.record(day, AddrSet::from_iter(world.day_log(day).addrs()));
    }
    let day_addrs: Vec<Addr> = obs.on(reference).iter().collect();

    // --- Stage 1: trie build -----------------------------------------
    let (b_min, b_med) = time_ms(samples, || {
        let mut t = NaiveTrie::default();
        for &a in &day_addrs {
            t.insert_addr(a, 1);
        }
        t.entries().len()
    });
    let (a_min, a_med) = time_ms(samples, || {
        let mut t = RadixTree::new();
        for &a in &day_addrs {
            t.insert_addr(a, 1);
        }
        t.entries().len()
    });
    let mut naive = NaiveTrie::default();
    let mut arena = RadixTree::new();
    for &a in &day_addrs {
        naive.insert_addr(a, 1);
        arena.insert_addr(a, 1);
    }
    let build = Stage {
        name: "trie_build",
        before_ms_min: b_min,
        before_ms_median: b_med,
        after_ms_min: a_min,
        after_ms_median: a_med,
        equivalent: format!("{:?}", naive.entries()) == format!("{:?}", arena.entries()),
    };

    // --- Stage 2: densify --------------------------------------------
    let (b_min, b_med) = time_ms(samples, || naive.densify(DENSIFY_N, DENSIFY_P).len());
    let (a_min, a_med) = time_ms(samples, || arena.densify(DENSIFY_N, DENSIFY_P).len());
    let densify = Stage {
        name: "densify",
        before_ms_min: b_min,
        before_ms_median: b_med,
        after_ms_min: a_min,
        after_ms_median: a_med,
        equivalent: format!("{:?}", naive.densify(DENSIFY_N, DENSIFY_P))
            == format!("{:?}", arena.densify(DENSIFY_N, DENSIFY_P)),
    };

    // --- Stage 3: stability window -----------------------------------
    let week: Vec<Day> = reference.range_inclusive(reference + 6).collect();
    let (b_min, b_med) = time_ms(samples, || {
        week.iter()
            .map(|&d| naive_stable_on(&obs, d, &params).len())
            .sum::<usize>()
    });
    let (a_min, a_med) = time_ms(samples, || {
        week.iter()
            .map(|&d| obs.stable_on(d, &params).len())
            .sum::<usize>()
    });
    let before_sets: Vec<AddrSet> = week
        .iter()
        .map(|&d| naive_stable_on(&obs, d, &params))
        .collect();
    let after_sets: Vec<AddrSet> = week.iter().map(|&d| obs.stable_on(d, &params)).collect();
    let stability = Stage {
        name: "stability_window",
        before_ms_min: b_min,
        before_ms_median: b_med,
        after_ms_min: a_min,
        after_ms_median: a_med,
        equivalent: format!("{before_sets:?}") == format!("{after_sets:?}"),
    };

    (vec![build, densify, stability], day_addrs.len())
}

fn main() {
    let opts = Opts::parse();
    let samples = if std::env::var_os("BENCH_QUICK").is_some() {
        3
    } else {
        7
    };

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"pipeline_speed\",");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(json, "  \"densify_n\": {DENSIFY_N},");
    let _ = writeln!(json, "  \"densify_p\": {DENSIFY_P},");
    let _ = writeln!(json, "  \"scales\": [");

    let mut all_equivalent = true;
    let scales = [0.25, 1.0];
    for (si, &scale) in scales.iter().enumerate() {
        eprintln!("[pipeline_speed] scale {scale}: building 21-day window…");
        let (stages, addrs_day) = run_scale(scale, opts.seed, samples);
        println!("scale {scale} ({addrs_day} addrs on the reference day):");
        for s in &stages {
            println!(
                "  {:<18} before min {:>9.2}ms   after min {:>9.2}ms   {:>6.2}x   equivalent: {}",
                s.name,
                s.before_ms_min,
                s.after_ms_min,
                s.speedup(),
                s.equivalent
            );
            all_equivalent &= s.equivalent;
        }
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"scale\": {scale},");
        let _ = writeln!(json, "      \"addrs_day\": {addrs_day},");
        let _ = writeln!(json, "      \"stages\": [");
        for (i, s) in stages.iter().enumerate() {
            let _ = writeln!(json, "        {{");
            let _ = writeln!(json, "          \"stage\": \"{}\",", s.name);
            let _ = writeln!(json, "          \"before_ms_min\": {:.3},", s.before_ms_min);
            let _ = writeln!(
                json,
                "          \"before_ms_median\": {:.3},",
                s.before_ms_median
            );
            let _ = writeln!(json, "          \"after_ms_min\": {:.3},", s.after_ms_min);
            let _ = writeln!(
                json,
                "          \"after_ms_median\": {:.3},",
                s.after_ms_median
            );
            let _ = writeln!(json, "          \"speedup_min\": {:.2},", s.speedup());
            let _ = writeln!(json, "          \"equivalent\": {}", s.equivalent);
            let comma = if i + 1 < stages.len() { "," } else { "" };
            let _ = writeln!(json, "        }}{comma}");
        }
        let _ = writeln!(json, "      ]");
        let comma = if si + 1 < scales.len() { "," } else { "" };
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"equivalent\": {all_equivalent}");
    json.push_str("}\n");

    opts.emit("BENCH_pipeline.json", &json);
    v6census_bench::write_baseline("BENCH_pipeline.json", &json);

    if !all_equivalent {
        eprintln!("error: naive and optimized outputs diverged — speedups are void");
        std::process::exit(1);
    }
}
