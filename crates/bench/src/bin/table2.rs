//! Regenerates **Table 2**: stability of active IPv6 WWW client addresses
//! and /64 prefixes, per day and per week, with 6-month and 1-year
//! cross-epoch classes.

use v6census_bench::{epoch_specs, Opts, Snapshot};
use v6census_census::tables::Table2;
use v6census_core::temporal::StabilityParams;

fn main() {
    let opts = Opts::parse();
    eprintln!(
        "[table2] building 3-epoch snapshot at scale {}…",
        opts.scale
    );
    let snap = Snapshot::build(&opts);
    let specs = epoch_specs();
    let params = StabilityParams::three_day();

    let a = Table2::daily(
        "(a) Stability of IPv6 addresses per day",
        snap.census.other_daily(),
        &specs,
        params,
    );
    let b = Table2::daily(
        "(b) Stability of /64 prefixes per day",
        snap.census.other64_daily(),
        &specs,
        params,
    );
    let c = Table2::weekly(
        "(c) Stability of IPv6 addresses per week",
        snap.census.other_daily(),
        &specs,
        params,
    );
    let d = Table2::weekly(
        "(d) Stability of /64 prefixes per week",
        snap.census.other64_daily(),
        &specs,
        params,
    );
    opts.emit("table2a_addr_daily.txt", &a.render());
    opts.emit("table2b_64_daily.txt", &b.render());
    opts.emit("table2c_addr_weekly.txt", &c.render());
    opts.emit("table2d_64_weekly.txt", &d.render());
}
