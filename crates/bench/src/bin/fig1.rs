//! Regenerates **Figure 1**: the paper's four sample addresses in
//! presentation format, with the content-based classification each one
//! illustrates (§3).

use v6census_addr::scheme::classify;
use v6census_addr::{Addr, Iid};
use v6census_bench::Opts;

fn main() {
    let opts = Opts::parse();
    let samples: [(&str, &str); 4] = [
        ("2001:db8:10:1::103", "(i) fixed IID value"),
        ("2001:db8:167:1109::10:901", "(ii) structured low 64 bits"),
        (
            "2001:db8:0:1cdf:21e:c2ff:fec0:11db",
            "(iii) SLAAC EUI-64 (Ethernet MAC)",
        ),
        (
            "2001:db8:4137:9e76:3031:f3fd:bbdd:2c2a",
            "(iv) SLAAC privacy (pseudorandom IID)",
        ),
    ];
    let mut out =
        String::from("Sample IPv6 addresses (paper Figure 1), with content classification:\n\n");
    for (text, caption) in samples {
        let a: Addr = text.parse().expect("figure addresses parse");
        let scheme = classify(a);
        let extra = match scheme {
            v6census_addr::AddressScheme::Eui64(mac) => format!(" mac={mac}"),
            _ => format!(" u-bit={}", Iid::of(a).u_bit()),
        };
        out.push_str(&format!(
            "  {text:<42} {caption}\n    -> classified: {}{extra}\n",
            scheme.label()
        ));
    }
    opts.emit("fig1_samples.txt", &out);
}
