//! Regenerates the **§7.2 future-work experiment**: automatically
//! discovering the stable portion of network identifiers — per-ASN
//! stability spectra with their boundaries, and the EUI-64-guided NID
//! inference of §7.1 — without any inside information.

use v6census_bench::{Opts, Snapshot};
use v6census_census::experiments::stable_nid_by_mac;
use v6census_core::temporal::{spectrum_between, Day};
use v6census_synth::world::{asns, epochs};
use v6census_trie::AddrSet;

fn main() {
    let opts = Opts::parse();
    eprintln!(
        "[stable_prefixes] building 3-epoch snapshot at scale {}…",
        opts.scale
    );
    let snap = Snapshot::build(&opts);
    let m15 = epochs::mar2015();
    let s14 = epochs::sep2014();
    let week = |d: Day| d.range_inclusive(d + 6);

    // --- Spectrum per network (address-population view) -----------------
    let cur = snap.census.other_over(week(m15));
    let old = snap.census.other_over(week(s14));
    let by_asn_cur = snap.rt.group_by_asn(&cur);
    let by_asn_old = snap.rt.group_by_asn(&old);

    let mut report = String::from(
        "Stable-prefix spectra (fraction of active /p aggregates also active 6 months ago)\n\n",
    );
    report.push_str(&format!(
        "{:<26} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}  {:>9} {:>6}\n",
        "network", "/24", "/32", "/40", "/48", "/56", "/64", "boundary", "knee"
    ));
    let interesting = [
        ("US mobile A", asns::MOBILE_A),
        ("US mobile B", asns::MOBILE_B),
        ("EU ISP (rotating NID)", asns::EU_ISP),
        ("JP ISP (static /48)", asns::JP_ISP),
        ("US broadband", asns::US_BROADBAND),
        ("university 0", asns::UNIVERSITY_FIRST),
    ];
    let empty = AddrSet::new();
    for (label, asn) in interesting {
        let c = by_asn_cur.get(&asn).unwrap_or(&empty);
        let o = by_asn_old.get(&asn).unwrap_or(&empty);
        let spec = v6census_core::temporal::stable_fraction_spectrum(c, o, (24..=64).step_by(8));
        let frac = |p: u8| {
            spec.points
                .iter()
                .find(|&&(q, _, _)| q == p)
                .map(|&(_, _, f)| f)
                .unwrap_or(0.0)
        };
        report.push_str(&format!(
            "{:<26} {:>6.2} {:>6.2} {:>6.2} {:>6.2} {:>6.2} {:>6.2}  {:>8} {:>6}\n",
            label,
            frac(24),
            frac(32),
            frac(40),
            frac(48),
            frac(56),
            frac(64),
            spec.boundary(0.5)
                .map(|b| format!("/{b}"))
                .unwrap_or_else(|| "—".into()),
            spec.sharpest_drop()
                .map(|(k, _)| format!("/{k}"))
                .unwrap_or_else(|| "—".into()),
        ));
    }

    // --- Global spectrum via the observation store ----------------------
    let global = spectrum_between(
        snap.census.other_daily(),
        week(m15),
        week(s14),
        (8..=64).step_by(8),
    );
    report.push_str("\nglobal spectrum: ");
    for (p, _, f) in &global.points {
        report.push_str(&format!("/{p}={f:.2} "));
    }
    report.push('\n');

    // --- §7.1: EUI-64 IIDs as guides -------------------------------------
    report.push_str("\nEUI-64-guided NID inference (median stable network bits per ASN):\n");
    let inferences = stable_nid_by_mac(&snap.census, &snap.rt, m15, s14, 5);
    for (label, asn) in interesting {
        if let Some(inf) = inferences.get(&asn) {
            report.push_str(&format!(
                "  {:<26} /{:<3} ({} devices tracked)\n",
                label, inf.median_stable_bits, inf.samples
            ));
        }
    }
    opts.emit("stable_prefixes.txt", &report);
}
