//! Regenerates **Table 1**: active IPv6 WWW client address
//! characteristics per day and per week at the three study epochs.

use v6census_bench::{epoch_specs, Opts, Snapshot};
use v6census_census::tables::table1;

fn main() {
    let opts = Opts::parse();
    eprintln!(
        "[table1] building 3-epoch snapshot at scale {} (paper ≈ scale × 1000)…",
        opts.scale
    );
    let snap = Snapshot::build(&opts);
    let (daily, weekly) = table1(&snap.census, &epoch_specs());
    opts.emit("table1a_per_day.txt", &daily.render());
    opts.emit("table1b_per_week.txt", &weekly.render());
}
