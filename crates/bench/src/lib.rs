//! Shared harness for the experiment regenerators (one binary per paper
//! table/figure) and the microbenchmarks.
//!
//! Every binary accepts `--scale <f64>` (default 0.25; 1.0 ≈ 1/1000 of
//! the paper's population), `--seed <u64>`, and `--out <dir>` (write
//! TSV/report files next to printing them).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use v6census_census::{Census, RoutingTable};
use v6census_core::temporal::Day;
use v6census_synth::world::epochs;
use v6census_synth::{World, WorldConfig};

/// Command-line options shared by all regenerator binaries.
#[derive(Clone, Debug)]
pub struct Opts {
    /// Population scale (1.0 ≈ 1/1000 of the paper).
    pub scale: f64,
    /// World seed.
    pub seed: u64,
    /// Optional output directory for TSV/report files.
    pub out: Option<PathBuf>,
}

impl Default for Opts {
    fn default() -> Opts {
        Opts {
            scale: 0.25,
            seed: 0x76c3_15c3_0001,
            out: None,
        }
    }
}

impl Opts {
    /// Parses `--scale`, `--seed`, `--out` from `std::env::args`.
    /// Unknown flags abort with a usage message.
    pub fn parse() -> Opts {
        Opts::parse_from(std::env::args().skip(1).collect())
    }

    /// Testable core of [`Opts::parse`].
    pub fn parse_from(args: Vec<String>) -> Opts {
        let mut opts = Opts::default();
        let mut args = args.into_iter();
        while let Some(flag) = args.next() {
            let mut value = || {
                args.next()
                    .unwrap_or_else(|| usage(&format!("missing value for {flag}")))
            };
            match flag.as_str() {
                "--scale" => {
                    opts.scale = value()
                        .parse()
                        .unwrap_or_else(|_| usage("bad --scale value"))
                }
                "--seed" => {
                    opts.seed = value()
                        .parse()
                        .unwrap_or_else(|_| usage("bad --seed value"))
                }
                "--out" => opts.out = Some(PathBuf::from(value())),
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        opts
    }

    /// Builds the world for these options.
    pub fn world(&self) -> World {
        World::standard(WorldConfig {
            seed: self.seed,
            scale: self.scale,
        })
    }

    /// Prints a report section and optionally writes it under `--out`.
    pub fn emit(&self, name: &str, content: &str) {
        println!("==== {name} ====");
        println!("{content}");
        if let Some(dir) = &self.out {
            std::fs::create_dir_all(dir).expect("create --out dir");
            let path = dir.join(name);
            std::fs::write(&path, content).expect("write report file");
            eprintln!("[wrote {}]", path.display());
        }
    }
}

/// Writes a benchmark JSON point at the repository root (next to the
/// workspace `Cargo.toml`), unconditionally — the `BENCH_*.json` files
/// are committed as the tracked baseline and uploaded by CI as build
/// artifacts. `Opts::emit` still honors `--out` for ad-hoc copies.
pub fn write_baseline(name: &str, content: &str) {
    let path = baseline_path(name);
    std::fs::write(&path, content).expect("write baseline JSON at repo root");
    eprintln!("[baseline {}]", path.display());
}

/// Where [`write_baseline`] puts (and the committed tree keeps) a
/// `BENCH_*.json` point — for benches that inspect the existing baseline
/// before deciding whether to overwrite it.
pub fn baseline_path(name: &str) -> PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name)
}

pub mod naive;

/// A minimal wall-clock timing harness so `cargo bench` works with no
/// external crates. Each benchmark runs one warm-up pass, then a fixed
/// number of timed samples; the report shows the minimum (least noisy)
/// and median. `--quick` (or `BENCH_QUICK=1`) trims samples for smoke
/// runs in CI.
pub mod timing {
    pub use std::hint::black_box;
    use std::time::{Duration, Instant};

    /// Collects and prints timings for a group of benchmarks.
    pub struct Harness {
        samples: usize,
    }

    impl Default for Harness {
        fn default() -> Harness {
            Harness { samples: 10 }
        }
    }

    impl Harness {
        /// Builds a harness, honoring `--quick` / `BENCH_QUICK=1`.
        pub fn from_env() -> Harness {
            let quick = std::env::args().any(|a| a == "--quick")
                || std::env::var_os("BENCH_QUICK").is_some();
            Harness {
                samples: if quick { 2 } else { 10 },
            }
        }

        /// Times `f` and prints one report line. The closure's result is
        /// passed through [`black_box`] so the work is not optimized out.
        pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) {
            black_box(f()); // warm-up: page in data, warm caches
            let mut times: Vec<Duration> = (0..self.samples)
                .map(|_| {
                    let start = Instant::now();
                    black_box(f());
                    start.elapsed()
                })
                .collect();
            times.sort();
            let min = times[0];
            let median = times[times.len() / 2];
            println!("{name:<44} min {min:>12.2?}   median {median:>12.2?}");
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: <bin> [--scale F] [--seed N] [--out DIR]");
    std::process::exit(if err.is_empty() { 0 } else { 2 })
}

/// The three study epochs with the paper's column labels.
pub fn epoch_specs() -> Vec<v6census_census::tables::EpochSpec> {
    use v6census_census::tables::EpochSpec;
    vec![
        EpochSpec {
            label: "Mar 17, 2014",
            reference: epochs::mar2014(),
        },
        EpochSpec {
            label: "Sep 17, 2014",
            reference: epochs::sep2014(),
        },
        EpochSpec {
            label: "Mar 17, 2015",
            reference: epochs::mar2015(),
        },
    ]
}

/// A fully ingested snapshot: the three 21-day windows (±7 days around
/// each epoch's reference week) plus the routing table — enough for every
/// table and figure.
pub struct Snapshot {
    /// The world.
    pub world: World,
    /// Census over all ingested days.
    pub census: Census,
    /// Routing table as of March 2015.
    pub rt: RoutingTable,
}

impl Snapshot {
    /// Days ingested per epoch: reference−7 .. reference+13 (covers the
    /// ±7d window of every day in the reference week).
    pub fn epoch_days(reference: Day) -> impl Iterator<Item = Day> {
        (reference - 7).range_inclusive(reference + 13)
    }

    /// Builds the snapshot (generates 63 daily logs; the dominant cost).
    pub fn build(opts: &Opts) -> Snapshot {
        let world = opts.world();
        let mut census = Census::new_empty();
        for e in [epochs::mar2014(), epochs::sep2014(), epochs::mar2015()] {
            for day in Self::epoch_days(e) {
                census.ingest(&world.day_log(day));
            }
        }
        let rt = RoutingTable::of(&world, epochs::mar2015());
        Snapshot { world, census, rt }
    }

    /// Builds a snapshot covering only the March 2015 window (for the
    /// figures that need one epoch).
    pub fn build_mar2015(opts: &Opts) -> Snapshot {
        let world = opts.world();
        let mut census = Census::new_empty();
        for day in Self::epoch_days(epochs::mar2015()) {
            census.ingest(&world.day_log(day));
        }
        let rt = RoutingTable::of(&world, epochs::mar2015());
        Snapshot { world, census, rt }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6census_synth::world::epochs;

    fn parse(args: &[&str]) -> Opts {
        Opts::parse_from(args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn defaults_and_overrides() {
        let d = parse(&[]);
        assert_eq!(d.scale, 0.25);
        assert!(d.out.is_none());
        let o = parse(&["--scale", "0.5", "--seed", "9", "--out", "/tmp/x"]);
        assert_eq!(o.scale, 0.5);
        assert_eq!(o.seed, 9);
        assert_eq!(o.out.as_deref(), Some(std::path::Path::new("/tmp/x")));
    }

    #[test]
    fn world_uses_options() {
        let o = parse(&["--scale", "0.01", "--seed", "5"]);
        let w = o.world();
        assert_eq!(w.config().seed, 5);
        assert!((w.config().scale - 0.01).abs() < 1e-12);
    }

    #[test]
    fn epoch_specs_cover_the_study() {
        let specs = epoch_specs();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].reference, epochs::mar2014());
        assert_eq!(specs[2].reference, epochs::mar2015());
        // Snapshot windows cover every reference week's ±7d reach.
        let days: Vec<_> = Snapshot::epoch_days(epochs::mar2015()).collect();
        assert_eq!(days.len(), 21);
        assert_eq!(days[0], epochs::mar2015() - 7);
        assert_eq!(days[20], epochs::mar2015() + 13);
    }
}
