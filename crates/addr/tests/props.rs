//! Property-based tests for the address substrate, using the standard
//! library's `Ipv6Addr` as a parsing/formatting oracle.
//!
//! Cases are driven by a deterministic splitmix64 stream rather than an
//! external property-testing crate, so the workspace builds with no
//! dependencies outside the standard library. Every failure message
//! includes the case seed, which reproduces the input exactly.

use std::net::Ipv6Addr;
use v6census_addr::{Addr, Iid, Mac, Prefix};

const CASES: u64 = 400;

/// Deterministic case generator: a splitmix64 stream.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x6a09_e667_f3bc_c909)
    }

    fn u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn u128(&mut self) -> u128 {
        ((self.u64() as u128) << 64) | self.u64() as u128
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n >= 1);
        ((self.u64() as u128 * n as u128) >> 64) as u64
    }

    /// Realistic bit patterns are heavy in runs of zeros; mix raw words
    /// with masked/sparse ones so compression paths get exercised.
    fn addr_bits(&mut self) -> u128 {
        let raw = self.u128();
        match self.below(4) {
            0 => raw,
            1 => raw & self.u128(), // sparse bits
            2 => raw & !(u128::MAX.checked_shr(self.below(129) as u32).unwrap_or(0)), // prefix-like
            _ => raw | self.u128(), // dense bits
        }
    }
}

#[test]
fn format_matches_std() {
    let mut g = Gen::new(1);
    for case in 0..CASES {
        let bits = g.addr_bits();
        let ours = Addr(bits).to_string();
        let std = Ipv6Addr::from_bits(bits).to_string();
        assert_eq!(ours, std, "case {case}: bits {bits:#034x}");
    }
}

#[test]
fn display_parse_roundtrip() {
    let mut g = Gen::new(2);
    for case in 0..CASES {
        let a = Addr(g.addr_bits());
        let back: Addr = a.to_string().parse().unwrap();
        assert_eq!(a, back, "case {case}");
    }
}

#[test]
fn parse_matches_std_on_std_output() {
    let mut g = Gen::new(3);
    for case in 0..CASES {
        let bits = g.addr_bits();
        let text = Ipv6Addr::from_bits(bits).to_string();
        let ours: Addr = text.parse().unwrap();
        assert_eq!(ours.0, bits, "case {case}: {text}");
    }
}

#[test]
fn parse_full_form() {
    let mut g = Gen::new(4);
    for case in 0..CASES {
        let a = Addr(g.addr_bits());
        let segs = a.segments();
        let full = format!(
            "{:x}:{:x}:{:x}:{:x}:{:x}:{:x}:{:x}:{:x}",
            segs[0], segs[1], segs[2], segs[3], segs[4], segs[5], segs[6], segs[7]
        );
        assert_eq!(full.parse::<Addr>().unwrap(), a, "case {case}");
    }
}

#[test]
fn fixed_hex_roundtrip() {
    let mut g = Gen::new(5);
    for case in 0..CASES {
        let a = Addr(g.addr_bits());
        assert_eq!(
            Addr::from_fixed_hex(&a.to_fixed_hex()).unwrap(),
            a,
            "case {case}"
        );
    }
}

#[test]
fn accessors_reconstruct() {
    let mut g = Gen::new(6);
    for case in 0..100 {
        let bits = g.addr_bits();
        let a = Addr(bits);
        let mut from_bits = 0u128;
        for i in 0..128 {
            from_bits = (from_bits << 1) | a.bit(i) as u128;
        }
        assert_eq!(from_bits, bits, "case {case}: bit()");
        let mut from_nybbles = 0u128;
        for i in 0..32 {
            from_nybbles = (from_nybbles << 4) | a.nybble(i) as u128;
        }
        assert_eq!(from_nybbles, bits, "case {case}: nybble()");
        assert_eq!(Addr::from_segments(a.segments()), a);
        assert_eq!(Addr::from_bytes(a.to_bytes()), a);
        assert_eq!(
            ((a.network_bits() as u128) << 64) | a.iid_bits() as u128,
            bits
        );
    }
}

#[test]
fn mask_laws() {
    let mut g = Gen::new(7);
    for case in 0..CASES {
        let a = Addr(g.addr_bits());
        let len = g.below(129) as u8;
        let m = a.mask(len);
        assert_eq!(m.mask(len), m, "case {case}: idempotent");
        assert!(a.common_prefix_len(m) >= len.min(a.common_prefix_len(a)));
        if len < 128 {
            assert_eq!(m.mask(len + 1), m, "case {case}: masking is nested");
        }
    }
}

#[test]
fn common_prefix_consistency() {
    let mut g = Gen::new(8);
    for case in 0..CASES {
        let a = Addr(g.addr_bits());
        let b = Addr(g.addr_bits());
        let len = g.below(129) as u8;
        assert_eq!(
            a.common_prefix_len(b),
            b.common_prefix_len(a),
            "case {case}"
        );
        let share = a.common_prefix_len(b) >= len;
        assert_eq!(share, a.mask(len) == b.mask(len), "case {case}");
    }
}

#[test]
fn prefix_containment_laws() {
    let mut g = Gen::new(9);
    for case in 0..CASES {
        let x = g.addr_bits();
        let y = g.addr_bits();
        // Bias toward related prefixes so containment is actually hit.
        let y = if g.below(2) == 0 {
            x ^ (g.u128() >> (64 + g.below(64) as u32))
        } else {
            y
        };
        let p = Prefix::new(Addr(x), g.below(129) as u8);
        let q = Prefix::new(Addr(y), g.below(129) as u8);
        assert!(p.contains(p), "case {case}: reflexive");
        if p.contains(q) && q.contains(p) {
            assert_eq!(p, q, "case {case}: antisymmetric");
        }
        assert_eq!(p.contains_addr(Addr(y)), p.contains(Prefix::host(Addr(y))));
        if p.contains(q) {
            assert!(p.len() <= q.len());
            assert!(p.contains_addr(q.addr()));
        }
        let back: Prefix = p.to_string().parse().unwrap();
        assert_eq!(back, p, "case {case}: display roundtrip");
    }
}

#[test]
fn prefix_family_laws() {
    let mut g = Gen::new(10);
    for case in 0..CASES {
        let len = 1 + g.below(127) as u8;
        let p = Prefix::new(Addr(g.addr_bits()), len);
        let parent = p.parent().unwrap();
        assert!(parent.contains(p), "case {case}");
        let (l, r) = p.children().unwrap();
        assert!(p.contains(l) && p.contains(r));
        assert!(!l.overlaps(r));
        assert_eq!(l.span().unwrap() + r.span().unwrap(), p.span().unwrap());
        assert_eq!(l.parent().unwrap(), p);
        assert_eq!(r.parent().unwrap(), p);
    }
}

#[test]
fn eui64_roundtrip() {
    let mut g = Gen::new(11);
    for case in 0..CASES {
        let w = g.u64();
        let mac = Mac([
            w as u8,
            (w >> 8) as u8,
            (w >> 16) as u8,
            (w >> 24) as u8,
            (w >> 32) as u8,
            (w >> 40) as u8,
        ]);
        let iid = mac.to_modified_eui64();
        assert_eq!(Mac::from_modified_eui64(iid), Some(mac), "case {case}");
        assert!(Iid(iid).is_eui64());
        assert_eq!(Iid(iid).u_bit() == 1, mac.0[0] & 0x02 == 0, "case {case}");
        let parsed: Mac = mac.to_string().parse().unwrap();
        assert_eq!(parsed, mac, "case {case}");
    }
}

#[test]
fn eui64_decode_encode_consistency() {
    let mut g = Gen::new(12);
    for case in 0..CASES {
        // Half the cases force the ff:fe marker so decoding happens.
        let mut iid = g.u64();
        if g.below(2) == 0 {
            iid = (iid & 0xffff_ff00_0000_ffff) | 0x0000_00ff_fe00_0000;
        }
        if let Some(mac) = Mac::from_modified_eui64(iid) {
            assert_eq!(mac.to_modified_eui64(), iid, "case {case}");
        }
    }
}

#[test]
fn classify_total() {
    let mut g = Gen::new(13);
    for case in 0..CASES {
        let a = Addr(g.addr_bits());
        let s1 = v6census_addr::scheme::classify(a);
        let s2 = v6census_addr::scheme::classify(a);
        assert_eq!(s1, s2, "case {case}");
        let _ = v6census_addr::malone::classify_content_only(a);
        let _ = v6census_addr::iid_entropy_bits(Iid::of(a));
    }
}

#[test]
fn parser_handles_garbage() {
    let alphabet: &[u8] = b"0123456789abcdefABCDEF:. /";
    let mut g = Gen::new(14);
    for _case in 0..CASES {
        let len = g.below(64) as usize;
        let s: String = (0..len)
            .map(|_| alphabet[g.below(alphabet.len() as u64) as usize] as char)
            .collect();
        let _ = s.parse::<Addr>();
        let _ = s.parse::<Prefix>();
        let _ = Prefix::from_str_strict(&s);
    }
}

#[test]
fn ip6_arpa_roundtrip() {
    let mut g = Gen::new(15);
    for case in 0..CASES {
        let a = Addr(g.addr_bits());
        let ptr = a.to_ip6_arpa();
        assert_eq!(ptr.split('.').count(), 34, "case {case}");
        assert_eq!(Addr::from_ip6_arpa(&ptr).unwrap(), a, "case {case}");
    }
}
