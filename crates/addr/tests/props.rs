//! Property-based tests for the address substrate, using the standard
//! library's `Ipv6Addr` as a parsing/formatting oracle.

use proptest::prelude::*;
use std::net::Ipv6Addr;
use v6census_addr::{Addr, Iid, Mac, Prefix};

proptest! {
    /// Our RFC 5952 formatter agrees with the standard library's.
    #[test]
    fn format_matches_std(bits: u128) {
        let ours = Addr(bits).to_string();
        let std = Ipv6Addr::from_bits(bits).to_string();
        prop_assert_eq!(ours, std);
    }

    /// Display → parse is the identity.
    #[test]
    fn display_parse_roundtrip(bits: u128) {
        let a = Addr(bits);
        let back: Addr = a.to_string().parse().unwrap();
        prop_assert_eq!(a, back);
    }

    /// Anything the standard library parses, we parse to the same bits,
    /// and vice versa for our own output.
    #[test]
    fn parse_matches_std_on_std_output(bits: u128) {
        let text = Ipv6Addr::from_bits(bits).to_string();
        let ours: Addr = text.parse().unwrap();
        prop_assert_eq!(ours.0, bits);
    }

    /// Full uncompressed form parses to the same bits.
    #[test]
    fn parse_full_form(bits: u128) {
        let a = Addr(bits);
        let segs = a.segments();
        let full = format!(
            "{:x}:{:x}:{:x}:{:x}:{:x}:{:x}:{:x}:{:x}",
            segs[0], segs[1], segs[2], segs[3], segs[4], segs[5], segs[6], segs[7]
        );
        prop_assert_eq!(full.parse::<Addr>().unwrap(), a);
    }

    /// Fixed-width hex roundtrip.
    #[test]
    fn fixed_hex_roundtrip(bits: u128) {
        let a = Addr(bits);
        prop_assert_eq!(Addr::from_fixed_hex(&a.to_fixed_hex()).unwrap(), a);
    }

    /// Accessors reconstruct the value.
    #[test]
    fn accessors_reconstruct(bits: u128) {
        let a = Addr(bits);
        let mut from_bits = 0u128;
        for i in 0..128 {
            from_bits = (from_bits << 1) | a.bit(i) as u128;
        }
        prop_assert_eq!(from_bits, bits);
        let mut from_nybbles = 0u128;
        for i in 0..32 {
            from_nybbles = (from_nybbles << 4) | a.nybble(i) as u128;
        }
        prop_assert_eq!(from_nybbles, bits);
        prop_assert_eq!(Addr::from_segments(a.segments()), a);
        prop_assert_eq!(Addr::from_bytes(a.to_bytes()), a);
        prop_assert_eq!(
            ((a.network_bits() as u128) << 64) | a.iid_bits() as u128,
            bits
        );
    }

    /// mask(len) is idempotent, monotone in specificity, and respects
    /// common_prefix_len.
    #[test]
    fn mask_laws(bits: u128, len in 0u8..=128) {
        let a = Addr(bits);
        let m = a.mask(len);
        prop_assert_eq!(m.mask(len), m, "idempotent");
        prop_assert!(a.common_prefix_len(m) >= len.min(a.common_prefix_len(a)));
        if len < 128 {
            prop_assert_eq!(m.mask(len + 1), m, "masking is nested");
        }
    }

    /// common_prefix_len is symmetric and consistent with equality of
    /// masked values.
    #[test]
    fn common_prefix_consistency(x: u128, y: u128, len in 0u8..=128) {
        let a = Addr(x);
        let b = Addr(y);
        prop_assert_eq!(a.common_prefix_len(b), b.common_prefix_len(a));
        let share = a.common_prefix_len(b) >= len;
        prop_assert_eq!(share, a.mask(len) == b.mask(len));
    }

    /// Prefix containment is a partial order consistent with masks.
    #[test]
    fn prefix_containment_laws(x: u128, y: u128, l1 in 0u8..=128, l2 in 0u8..=128) {
        let p = Prefix::new(Addr(x), l1);
        let q = Prefix::new(Addr(y), l2);
        prop_assert!(p.contains(p), "reflexive");
        if p.contains(q) && q.contains(p) {
            prop_assert_eq!(p, q, "antisymmetric");
        }
        prop_assert_eq!(p.contains_addr(Addr(y)), p.contains(Prefix::host(Addr(y))));
        if p.contains(q) {
            prop_assert!(p.len() <= q.len());
            prop_assert!(p.contains_addr(q.addr()));
        }
        // Display roundtrip for prefixes too.
        let back: Prefix = p.to_string().parse().unwrap();
        prop_assert_eq!(back, p);
    }

    /// Parent/children invert each other and tile the parent's span.
    #[test]
    fn prefix_family_laws(x: u128, len in 1u8..=127) {
        let p = Prefix::new(Addr(x), len);
        let parent = p.parent().unwrap();
        prop_assert!(parent.contains(p));
        let (l, r) = p.children().unwrap();
        prop_assert!(p.contains(l) && p.contains(r));
        prop_assert!(!l.overlaps(r));
        prop_assert_eq!(l.span().unwrap() + r.span().unwrap(), p.span().unwrap());
        prop_assert_eq!(l.parent().unwrap(), p);
        prop_assert_eq!(r.parent().unwrap(), p);
    }

    /// EUI-64 encode/decode roundtrip, and the u-bit flip.
    #[test]
    fn eui64_roundtrip(m0: u8, m1: u8, m2: u8, m3: u8, m4: u8, m5: u8) {
        let mac = Mac([m0, m1, m2, m3, m4, m5]);
        let iid = mac.to_modified_eui64();
        prop_assert_eq!(Mac::from_modified_eui64(iid), Some(mac));
        // The IID carries the ff:fe marker.
        prop_assert!(Iid(iid).is_eui64());
        // u-bit in the IID is the inverse of the MAC's u/l bit.
        prop_assert_eq!(Iid(iid).u_bit() == 1, m0 & 0x02 == 0);
        // MAC text roundtrip.
        let parsed: Mac = mac.to_string().parse().unwrap();
        prop_assert_eq!(parsed, mac);
    }

    /// Random 64-bit IIDs almost never alias EUI-64 (the marker is 16
    /// specific bits); when they do, decode must re-encode to the same
    /// IID.
    #[test]
    fn eui64_decode_encode_consistency(iid: u64) {
        if let Some(mac) = Mac::from_modified_eui64(iid) {
            prop_assert_eq!(mac.to_modified_eui64(), iid);
        }
    }

    /// The content classifier is total and stable (never panics, same
    /// result twice) on arbitrary input.
    #[test]
    fn classify_total(bits: u128) {
        let a = Addr(bits);
        let s1 = v6census_addr::scheme::classify(a);
        let s2 = v6census_addr::scheme::classify(a);
        prop_assert_eq!(s1, s2);
        let _ = v6census_addr::malone::classify_content_only(a);
        let _ = v6census_addr::iid_entropy_bits(Iid::of(a));
    }

    /// Garbage strings never panic the parser.
    #[test]
    fn parser_handles_garbage(s in "[0-9a-fA-F:. /]{0,64}") {
        let _ = s.parse::<Addr>();
        let _ = s.parse::<Prefix>();
        let _ = Prefix::from_str_strict(&s);
    }
}

proptest! {
    /// ip6.arpa pointer-name roundtrip.
    #[test]
    fn ip6_arpa_roundtrip(bits: u128) {
        let a = Addr(bits);
        let ptr = a.to_ip6_arpa();
        prop_assert_eq!(ptr.split('.').count(), 34);
        prop_assert_eq!(Addr::from_ip6_arpa(&ptr).unwrap(), a);
    }
}
