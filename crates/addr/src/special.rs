//! Registry of special-use IPv6 prefixes relevant to the study (§3, §4.1).
//!
//! The census pipeline culls addresses of the early transition mechanisms
//! (Teredo, ISATAP, 6to4) from the "Other" (native end-to-end) population
//! before classification, because those mechanisms' addresses are trivially
//! recognized by content and would skew the temporal/spatial results.

use crate::{Addr, Iid, Prefix};

/// `2001::/32` — Teredo (RFC 4380).
pub const TEREDO: Prefix = Prefix::new(Addr(0x2001_0000_0000_0000_0000_0000_0000_0000), 32);

/// `2002::/16` — 6to4 (RFC 3056 / RFC 3068 relays).
pub const SIX_TO_FOUR: Prefix = Prefix::new(Addr(0x2002_0000_0000_0000_0000_0000_0000_0000), 16);

/// `2000::/3` — the global unicast space.
pub const GLOBAL_UNICAST: Prefix = Prefix::new(Addr(0x2000_0000_0000_0000_0000_0000_0000_0000), 3);

/// `2001:db8::/32` — documentation (RFC 3849); used in the paper's figures.
pub const DOCUMENTATION: Prefix = Prefix::new(Addr(0x2001_0db8_0000_0000_0000_0000_0000_0000), 32);

/// `fe80::/10` — link-local unicast.
pub const LINK_LOCAL: Prefix = Prefix::new(Addr(0xfe80_0000_0000_0000_0000_0000_0000_0000), 10);

/// `fc00::/7` — unique local addresses (RFC 4193).
pub const UNIQUE_LOCAL: Prefix = Prefix::new(Addr(0xfc00_0000_0000_0000_0000_0000_0000_0000), 7);

/// `ff00::/8` — multicast.
pub const MULTICAST: Prefix = Prefix::new(Addr(0xff00_0000_0000_0000_0000_0000_0000_0000), 8);

/// `::ffff:0:0/96` — IPv4-mapped addresses.
pub const V4_MAPPED: Prefix = Prefix::new(Addr(0x0000_0000_0000_0000_0000_ffff_0000_0000), 96);

/// `64:ff9b::/96` — the NAT64 well-known prefix (RFC 6052), used by
/// 464XLAT deployments; these count as *native* IPv6 transport in the
/// paper (§4.1) because the client speaks IPv6 end-to-end.
pub const NAT64_WKP: Prefix = Prefix::new(Addr(0x0064_ff9b_0000_0000_0000_0000_0000_0000), 96);

/// True for Teredo addresses.
pub fn is_teredo(a: Addr) -> bool {
    TEREDO.contains_addr(a)
}

/// True for 6to4 addresses.
pub fn is_6to4(a: Addr) -> bool {
    SIX_TO_FOUR.contains_addr(a)
}

/// True for ISATAP addresses, recognized by their IID format
/// (`[02]00:5efe` + embedded IPv4, RFC 5214 §6.1). ISATAP has no reserved
/// network prefix — any /64 can host ISATAP interfaces.
pub fn is_isatap(a: Addr) -> bool {
    Iid::of(a).is_isatap()
}

/// True for addresses in the global unicast space (`2000::/3`).
pub fn is_global_unicast(a: Addr) -> bool {
    GLOBAL_UNICAST.contains_addr(a)
}

/// True for an address a CDN could plausibly log as a WWW client source:
/// global unicast and not multicast/link-local/ULA/v4-mapped.
pub fn is_plausible_client(a: Addr) -> bool {
    is_global_unicast(a)
        && !MULTICAST.contains_addr(a)
        && !LINK_LOCAL.contains_addr(a)
        && !UNIQUE_LOCAL.contains_addr(a)
        && !V4_MAPPED.contains_addr(a)
}

/// The IPv4 address embedded in a 6to4 address (`2002:AABB:CCDD::/48`),
/// or `None` when `a` is not 6to4.
pub fn sixtofour_embedded_v4(a: Addr) -> Option<[u8; 4]> {
    if is_6to4(a) {
        Some(a.v4_in_6to4())
    } else {
        None
    }
}

/// The IPv4 address of the Teredo *server* embedded in a Teredo address
/// (bits 32..64), or `None` when `a` is not Teredo.
pub fn teredo_server_v4(a: Addr) -> Option<[u8; 4]> {
    if is_teredo(a) {
        Some(crate::cast::checked_u32((a.0 >> 64) & 0xffff_ffff).to_be_bytes())
    } else {
        None
    }
}

/// The IPv4 address of the Teredo *client* embedded (obfuscated, XOR
/// 0xffffffff) in the low 32 bits of a Teredo address.
pub fn teredo_client_v4(a: Addr) -> Option<[u8; 4]> {
    if is_teredo(a) {
        Some((crate::cast::checked_u32(a.0 & 0xffff_ffff) ^ 0xffff_ffff).to_be_bytes())
    } else {
        None
    }
}

/// The Teredo flags field (bits 64..80 of a Teredo address, RFC 4380
/// §4): bit 0x8000 marks a client behind a cone NAT.
pub fn teredo_flags(a: Addr) -> Option<u16> {
    if is_teredo(a) {
        Some(crate::cast::checked_u16((a.0 >> 48) & 0xffff))
    } else {
        None
    }
}

/// The Teredo client's mapped UDP port, de-obfuscated (bits 80..96 are
/// the port XOR 0xffff).
pub fn teredo_client_port(a: Addr) -> Option<u16> {
    if is_teredo(a) {
        Some(crate::cast::checked_u16((a.0 >> 32) & 0xffff) ^ 0xffff)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn classification_of_reserved_spaces() {
        assert!(is_teredo(a("2001::1")));
        assert!(is_teredo(a("2001:0:4136:e378:8000:63bf:3fff:fdd2")));
        assert!(!is_teredo(a("2001:db8::1"))); // 2001:db8 is /32-adjacent, not /32-inside
        assert!(is_6to4(a("2002:c000:0201::1")));
        assert!(!is_6to4(a("2001:db8::1")));
        assert!(is_isatap(a("2001:db8::200:5efe:192.0.2.1")));
        assert!(is_global_unicast(a("2400::1")));
        assert!(!is_global_unicast(a("fe80::1")));
    }

    #[test]
    fn plausible_client_filter() {
        assert!(is_plausible_client(a("2001:db8::1")));
        assert!(!is_plausible_client(a("fe80::1")));
        assert!(!is_plausible_client(a("fd00::1")));
        assert!(!is_plausible_client(a("ff02::1")));
        assert!(!is_plausible_client(a("::ffff:192.0.2.1")));
        assert!(!is_plausible_client(a("::1")));
    }

    #[test]
    fn embedded_v4_extraction() {
        assert_eq!(
            sixtofour_embedded_v4(a("2002:c000:0201::1")),
            Some([192, 0, 2, 1])
        );
        assert_eq!(sixtofour_embedded_v4(a("2001:db8::1")), None);

        // Teredo: 2001:0:SERVER:flags:port:~CLIENT
        let t = a("2001:0:4136:e378:8000:63bf:3fff:fdd2");
        assert_eq!(teredo_server_v4(t), Some([0x41, 0x36, 0xe3, 0x78]));
        // client = ~(3fff:fdd2) = c000:022d = 192.0.2.45
        assert_eq!(teredo_client_v4(t), Some([192, 0, 2, 45]));
        assert_eq!(teredo_client_v4(a("2002::1")), None);
        // flags = 0x8000 (cone NAT), port = ~0x63bf = 0x9c40 = 40000.
        assert_eq!(teredo_flags(t), Some(0x8000));
        assert_eq!(teredo_client_port(t), Some(40000));
        assert_eq!(teredo_flags(a("2400::1")), None);
        assert_eq!(teredo_client_port(a("2400::1")), None);
    }

    #[test]
    fn teredo_is_inside_global_unicast() {
        // Sanity on prefix relationships the culling logic relies on.
        assert!(GLOBAL_UNICAST.contains(TEREDO));
        assert!(GLOBAL_UNICAST.contains(SIX_TO_FOUR));
        assert!(!TEREDO.overlaps(SIX_TO_FOUR));
        assert!(TEREDO.contains(Prefix::new(a("2001::"), 33)));
        assert!(!TEREDO.contains(DOCUMENTATION));
    }
}
