//! 48-bit MAC addresses and the modified EUI-64 interface-identifier
//! encoding used by SLAAC (RFC 4291 §2.5.1, RFC 4862).

use crate::bits::shr64;
use crate::cast::{checked_u32, checked_u8};
use std::fmt;
use std::str::FromStr;

/// Extracts the byte at `shift` from a packed integer — the crate's
/// checked-narrowing idiom for the EUI-64 bit shuffles below.
const fn byte(v: u64, shift: usize) -> u8 {
    checked_u8((shr64(v, shift) & 0xff) as u128)
}

/// A 48-bit IEEE 802 MAC address.
///
/// The paper tracks EUI-64 SLAAC addresses because their IIDs embed the
/// host's MAC address, making them persistent, globally-meaningful
/// identifiers: Table 1 reports "EUI-64 IIDs (MACs)" — the number of
/// *unique* MAC addresses behind the observed EUI-64 addresses.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Mac(pub [u8; 6]);

impl Mac {
    /// The MAC address the paper calls out as anomalously duplicated
    /// across many devices in one mobile carrier's network (§4.1 fn 2).
    pub const PAPER_DUPLICATE: Mac = Mac([0x00, 0x11, 0x22, 0x33, 0x44, 0x56]);

    /// Builds a MAC from a 24-bit OUI and a 24-bit NIC-specific part.
    ///
    /// # Panics
    /// Panics if either argument exceeds 24 bits.
    pub const fn from_oui_nic(oui: u32, nic: u32) -> Mac {
        assert!(oui <= 0xff_ffff && nic <= 0xff_ffff);
        Mac([
            byte(oui as u64, 16),
            byte(oui as u64, 8),
            byte(oui as u64, 0),
            byte(nic as u64, 16),
            byte(nic as u64, 8),
            byte(nic as u64, 0),
        ])
    }

    /// The Organizationally Unique Identifier (first 24 bits).
    pub const fn oui(self) -> u32 {
        let [m0, m1, m2, _, _, _] = self.0;
        checked_u32(((m0 as u128) << 16) | ((m1 as u128) << 8) | m2 as u128)
    }

    /// True when the universally/locally-administered bit marks this MAC
    /// as locally administered.
    pub const fn is_locally_administered(self) -> bool {
        let [m0, _, _, _, _, _] = self.0;
        m0 & 0x02 != 0
    }

    /// True when the individual/group bit marks this MAC as multicast.
    pub const fn is_multicast(self) -> bool {
        let [m0, _, _, _, _, _] = self.0;
        m0 & 0x01 != 0
    }

    /// Encodes this MAC as a modified EUI-64 interface identifier:
    /// `ff:fe` is inserted between the OUI and NIC halves, and the
    /// universal/local ("u") bit is inverted, so a factory-assigned
    /// (universal) MAC yields an IID with the u-bit *set*.
    pub const fn to_modified_eui64(self) -> u64 {
        let [m0, m1, m2, m3, m4, m5] = self.0;
        let b0 = m0 ^ 0x02;
        ((b0 as u64) << 56)
            | ((m1 as u64) << 48)
            | ((m2 as u64) << 40)
            | (0xff_u64 << 32)
            | (0xfe_u64 << 24)
            | ((m3 as u64) << 16)
            | ((m4 as u64) << 8)
            | m5 as u64
    }

    /// Decodes a modified EUI-64 interface identifier back to the MAC it
    /// embeds. Returns `None` when the IID does not carry the `ff:fe`
    /// marker in bits 24–39 of the IID.
    ///
    /// Note: a matching marker does not *prove* SLAAC derivation — the
    /// paper notes false positives and invalid embedded MACs (§4.1 fn 2) —
    /// so callers treat the result as a strong content-based hint.
    pub const fn from_modified_eui64(iid: u64) -> Option<Mac> {
        if (iid >> 24) & 0xffff != 0xfffe {
            return None;
        }
        Some(Mac([
            byte(iid, 56) ^ 0x02,
            byte(iid, 48),
            byte(iid, 40),
            byte(iid, 16),
            byte(iid, 8),
            byte(iid, 0),
        ]))
    }

    /// Returns the MAC as a `u64` in the low 48 bits (useful as a map key).
    pub const fn to_u64(self) -> u64 {
        let [m0, m1, m2, m3, m4, m5] = self.0;
        ((m0 as u64) << 40)
            | ((m1 as u64) << 32)
            | ((m2 as u64) << 24)
            | ((m3 as u64) << 16)
            | ((m4 as u64) << 8)
            | m5 as u64
    }

    /// Builds a MAC from the low 48 bits of a `u64`.
    ///
    /// # Panics
    /// Panics if bits above 48 are set.
    pub const fn from_u64(v: u64) -> Mac {
        assert!(v <= 0xffff_ffff_ffff, "MAC exceeds 48 bits");
        Mac([
            byte(v, 40),
            byte(v, 32),
            byte(v, 24),
            byte(v, 16),
            byte(v, 8),
            byte(v, 0),
        ])
    }
}

impl fmt::Display for Mac {
    /// Colon-separated lower-case hex pairs, e.g. `00:11:22:33:44:56`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [m0, m1, m2, m3, m4, m5] = self.0;
        write!(f, "{m0:02x}:{m1:02x}:{m2:02x}:{m3:02x}:{m4:02x}:{m5:02x}")
    }
}

impl fmt::Debug for Mac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mac({self})")
    }
}

/// Errors parsing a MAC address from text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacParseError;

impl fmt::Display for MacParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed MAC address")
    }
}

impl std::error::Error for MacParseError {}

impl FromStr for Mac {
    type Err = MacParseError;

    /// Parses `aa:bb:cc:dd:ee:ff` (case-insensitive, `-` also accepted).
    fn from_str(s: &str) -> Result<Mac, MacParseError> {
        let sep = if s.contains('-') { '-' } else { ':' };
        let mut out = [0u8; 6];
        let mut n = 0;
        for part in s.split(sep) {
            if n == 6 || part.len() != 2 {
                return Err(MacParseError);
            }
            out[n] = u8::from_str_radix(part, 16).map_err(|_| MacParseError)?;
            n += 1;
        }
        if n != 6 {
            return Err(MacParseError);
        }
        Ok(Mac(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eui64_roundtrip() {
        let mac: Mac = "00:1e:c2:c0:11:db".parse().unwrap();
        let iid = mac.to_modified_eui64();
        // Sample address from the paper's Figure 1 (iii):
        // 2001:db8:0:1cdf:21e:c2ff:fec0:11db
        assert_eq!(iid, 0x021e_c2ff_fec0_11db);
        assert_eq!(Mac::from_modified_eui64(iid), Some(mac));
    }

    #[test]
    fn non_eui64_iid_rejected() {
        assert_eq!(Mac::from_modified_eui64(0x3031_f3fd_bbdd_2c2a), None);
    }

    #[test]
    fn ubit_inversion() {
        // Universal MAC (u-bit 0 in MAC) -> IID with bit 70 set (0x02 in top byte).
        let mac = Mac([0x00, 0x00, 0x00, 0x00, 0x00, 0x01]);
        assert_eq!(mac.to_modified_eui64() >> 56, 0x02);
        // Locally administered MAC keeps u-bit clear in the IID.
        let local = Mac([0x02, 0x00, 0x00, 0x00, 0x00, 0x01]);
        assert_eq!(local.to_modified_eui64() >> 56, 0x00);
        assert!(local.is_locally_administered());
        assert!(!mac.is_locally_administered());
    }

    #[test]
    fn display_and_parse() {
        let mac = Mac::PAPER_DUPLICATE;
        assert_eq!(mac.to_string(), "00:11:22:33:44:56");
        assert_eq!("00-11-22-33-44-56".parse::<Mac>().unwrap(), mac);
        assert!("00:11:22:33:44".parse::<Mac>().is_err());
        assert!("00:11:22:33:44:5g".parse::<Mac>().is_err());
        assert!("001:1:22:33:44:56".parse::<Mac>().is_err());
    }

    #[test]
    fn u64_roundtrip() {
        let mac = Mac::from_oui_nic(0x001ec2, 0xc011db);
        assert_eq!(Mac::from_u64(mac.to_u64()), mac);
        assert_eq!(mac.oui(), 0x001ec2);
    }

    #[test]
    fn multicast_bit() {
        assert!(Mac([0x01, 0, 0, 0, 0, 0]).is_multicast());
        assert!(!Mac([0x00, 0, 0, 0, 0, 0]).is_multicast());
    }
}
