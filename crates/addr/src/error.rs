//! Error types for textual IPv6 address and prefix parsing.

use std::fmt;

/// An error produced while parsing an IPv6 address or prefix from text.
///
/// The parser in this crate is strict RFC 4291 §2.2: it accepts the full
/// form, the `::` compressed form, and the embedded-IPv4 dotted-quad tail,
/// and nothing else (no zone indices, no brackets, no leading/trailing
/// whitespace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The input was empty.
    Empty,
    /// A character outside `[0-9a-fA-F:.]` was encountered.
    InvalidCharacter(char),
    /// A hexadecimal group had more than 4 digits.
    GroupTooLong,
    /// More than one `::` appeared in the input.
    MultipleElisions,
    /// The address had too many 16-bit groups (more than 8, or more than
    /// the elision allows).
    TooManyGroups,
    /// The address had too few groups and no `::` to absorb the slack.
    TooFewGroups,
    /// A `:` appeared in a position where a group was required (e.g. a
    /// leading or trailing single colon).
    StrayColon,
    /// The embedded IPv4 dotted-quad tail was malformed.
    BadIpv4Tail,
    /// The prefix length following `/` was missing or not a number.
    BadPrefixLength,
    /// The prefix length exceeded 128.
    PrefixLengthRange(u16),
    /// A prefix had non-zero bits beyond its stated length (only an error
    /// for [`crate::Prefix::from_str_strict`]).
    HostBitsSet,
    /// The input was not an `ip6.arpa` pointer name.
    NotIp6Arpa,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty address"),
            ParseError::InvalidCharacter(c) => write!(f, "invalid character {c:?}"),
            ParseError::GroupTooLong => write!(f, "hex group longer than 4 digits"),
            ParseError::MultipleElisions => write!(f, "more than one '::'"),
            ParseError::TooManyGroups => write!(f, "too many 16-bit groups"),
            ParseError::TooFewGroups => write!(f, "too few 16-bit groups and no '::'"),
            ParseError::StrayColon => write!(f, "stray ':' without a group"),
            ParseError::BadIpv4Tail => write!(f, "malformed embedded IPv4 tail"),
            ParseError::BadPrefixLength => write!(f, "missing or malformed prefix length"),
            ParseError::PrefixLengthRange(n) => write!(f, "prefix length {n} exceeds 128"),
            ParseError::HostBitsSet => write!(f, "bits set beyond the prefix length"),
            ParseError::NotIp6Arpa => write!(f, "not an ip6.arpa pointer name"),
        }
    }
}

impl std::error::Error for ParseError {}
