//! Audited total bit-manipulation helpers for 128-bit address math.
//!
//! Lint rule `L006` bans bare shifts-by-expression (and bare `+ - *` on
//! sized integers) inside the bit-math crates: `x << n` panics in debug
//! builds — and wraps the shift *amount* in release — once `n` reaches
//! the type's width, and in prefix arithmetic that width is always one
//! off-by-one away (`128 - len` with `len == 0`). These helpers are the
//! sanctioned path: every shift goes through `checked_shl`/`checked_shr`
//! with an explicit out-of-range policy — shifting everything out yields
//! 0, the mathematical answer for a logical shift — so call sites state
//! what they mean and cannot panic.
//!
//! Everything here is a `const fn` so the `Addr` accessors, which are
//! `const`, can use them. Shift amounts are `usize` because that is what
//! bit/nybble loop indices naturally are; the helpers bound-check before
//! narrowing so the `usize → u32` step is provably lossless.

use crate::cast::{checked_u32, checked_usize};

/// Logical left shift, total: shifting by `n >= 128` yields 0.
#[inline]
#[must_use]
pub const fn shl128(v: u128, n: usize) -> u128 {
    if n >= 128 {
        0
    } else {
        // n < 128 here, so the widen-then-checked-narrow is lossless.
        match v.checked_shl(checked_u32(n as u128)) {
            Some(x) => x,
            None => 0,
        }
    }
}

/// Logical right shift, total: shifting by `n >= 128` yields 0.
#[inline]
#[must_use]
pub const fn shr128(v: u128, n: usize) -> u128 {
    if n >= 128 {
        0
    } else {
        match v.checked_shr(checked_u32(n as u128)) {
            Some(x) => x,
            None => 0,
        }
    }
}

/// Logical right shift on the 64-bit IID half, total: `n >= 64` yields 0.
#[inline]
#[must_use]
pub const fn shr64(v: u64, n: usize) -> u64 {
    if n >= 64 {
        0
    } else {
        match v.checked_shr(checked_u32(n as u128)) {
            Some(x) => x,
            None => 0,
        }
    }
}

/// The mask selecting address bit `i`, where bit 0 is the most
/// significant (the paper's bit order); 0 once `i` is off the end.
#[inline]
#[must_use]
pub const fn msb_mask(i: usize) -> u128 {
    shr128(1u128 << 127, i)
}

/// [`msb_mask`] for `u8` bit positions (prefix lengths), total the
/// same way.
#[inline]
#[must_use]
pub const fn msb_mask8(i: u8) -> u128 {
    msb_mask(checked_usize(i as u128))
}

/// The mask with the top `len` bits set — the network part of a `/len`
/// prefix. Total: `len == 0` yields 0 and `len >= 128` yields all ones.
#[inline]
#[must_use]
pub const fn high_mask(len: u8) -> u128 {
    let n = len as u128;
    if n >= 128 {
        u128::MAX
    } else {
        // 128 - n is in 1..=128 (n < 128 just checked) and fits u32;
        // checked_shl(128) is None exactly when len == 0, whose mask
        // is the empty mask.
        match u128::MAX.checked_shl(checked_u32(128 - n)) {
            Some(x) => x,
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shifts_are_total_at_and_past_the_width() {
        assert_eq!(shl128(1, 127), 1u128 << 127);
        assert_eq!(shl128(1, 128), 0);
        assert_eq!(shl128(u128::MAX, 1 << 20), 0);
        assert_eq!(shr128(u128::MAX, 127), 1);
        assert_eq!(shr128(u128::MAX, 128), 0);
        assert_eq!(shr64(u64::MAX, 63), 1);
        assert_eq!(shr64(u64::MAX, 64), 0);
    }

    #[test]
    fn masks_match_their_closed_forms() {
        assert_eq!(msb_mask(0), 1u128 << 127);
        assert_eq!(msb_mask(127), 1);
        assert_eq!(msb_mask(128), 0);
        assert_eq!(msb_mask8(64), 1u128 << 63);
        assert_eq!(msb_mask8(255), 0);
        assert_eq!(high_mask(0), 0);
        assert_eq!(high_mask(1), 1u128 << 127);
        assert_eq!(high_mask(64), u128::from(u64::MAX) << 64);
        assert_eq!(high_mask(128), u128::MAX);
        assert_eq!(high_mask(200), u128::MAX);
    }

    #[test]
    fn works_in_const_context() {
        const TOP: u128 = high_mask(48);
        assert_eq!(TOP, 0xffff_ffff_ffff_u128 << 80);
    }
}
