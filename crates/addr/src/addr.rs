//! The [`Addr`] type: a 128-bit IPv6 address.

use crate::bits::{high_mask, msb_mask, shl128, shr128};
use crate::cast::{checked_nybble, checked_seg, checked_u16, checked_u32, checked_u8};
use crate::ParseError;
use std::fmt;
use std::net::Ipv6Addr;
use std::str::FromStr;

/// A 128-bit IPv6 address.
///
/// Internally a big-endian-interpreted `u128`: bit 0 is the most
/// significant bit of the address (the first bit on the wire), matching the
/// prefix-length convention, so `addr.bit(0)` is the top bit of the first
/// hextet. This orientation makes prefix arithmetic (`common_prefix_len`,
/// masking, trie descent) a matter of plain shifts.
///
/// ```
/// use v6census_addr::Addr;
/// let a: Addr = "2001:db8::1".parse().unwrap();
/// assert_eq!(a.segment(0), 0x2001);
/// assert_eq!(a.nybble(0), 0x2);
/// assert_eq!(a.bit(0), 0); // 0x2001 starts with binary 0010...
/// assert_eq!(a.bit(2), 1);
/// assert_eq!(a.to_string(), "2001:db8::1");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u128);

impl Addr {
    /// The unspecified address `::`.
    pub const UNSPECIFIED: Addr = Addr(0);
    /// The loopback address `::1`.
    pub const LOCALHOST: Addr = Addr(1);

    /// Builds an address from eight 16-bit segments, first segment most
    /// significant (the order they are written in presentation format).
    pub const fn from_segments(s: [u16; 8]) -> Addr {
        let mut v: u128 = 0;
        let mut i = 0;
        while i < 8 {
            v = (v << 16) | s[i] as u128;
            i += 1;
        }
        Addr(v)
    }

    /// Builds an address from 16 bytes, most significant first.
    pub const fn from_bytes(b: [u8; 16]) -> Addr {
        Addr(u128::from_be_bytes(b))
    }

    /// Returns the address as 16 bytes, most significant first.
    pub const fn to_bytes(self) -> [u8; 16] {
        self.0.to_be_bytes()
    }

    /// Returns the eight 16-bit segments, most significant first.
    pub const fn segments(self) -> [u16; 8] {
        let v = self.0;
        [
            checked_seg(v >> 112),
            checked_seg((v >> 96) & 0xffff),
            checked_seg((v >> 80) & 0xffff),
            checked_seg((v >> 64) & 0xffff),
            checked_seg((v >> 48) & 0xffff),
            checked_seg((v >> 32) & 0xffff),
            checked_seg((v >> 16) & 0xffff),
            checked_seg(v & 0xffff),
        ]
    }

    /// Returns 16-bit segment `i` (0..8), segment 0 most significant.
    ///
    /// # Panics
    /// Panics if `i >= 8`.
    pub const fn segment(self, i: usize) -> u16 {
        assert!(i < 8, "segment index out of range");
        checked_seg(shr128(self.0, 112 - 16 * i) & 0xffff)
    }

    /// Returns nybble (hex character) `i` (0..32), nybble 0 most significant.
    ///
    /// # Panics
    /// Panics if `i >= 32`.
    pub const fn nybble(self, i: usize) -> u8 {
        assert!(i < 32, "nybble index out of range");
        checked_nybble(shr128(self.0, 124 - 4 * i) & 0xf)
    }

    /// All 32 nybbles at once, most significant first — the batched form
    /// of [`Addr::nybble`] for whole-address scans: one pass over the
    /// big-endian bytes instead of 32 independent 128-bit shifts.
    pub const fn nybbles(self) -> [u8; 32] {
        let bytes = self.0.to_be_bytes();
        let mut out = [0u8; 32];
        let mut i = 0;
        while i < 16 {
            out[2 * i] = bytes[i] >> 4;
            out[2 * i + 1] = bytes[i] & 0xf;
            i += 1;
        }
        out
    }

    /// Returns bit `i` (0..128) as 0 or 1; bit 0 is the most significant.
    ///
    /// # Panics
    /// Panics if `i >= 128`.
    pub const fn bit(self, i: usize) -> u8 {
        assert!(i < 128, "bit index out of range");
        checked_u8(shr128(self.0, 127 - i) & 1)
    }

    /// Returns a copy with bit `i` set to `v` (0 or 1); bit 0 is the most
    /// significant.
    ///
    /// # Panics
    /// Panics if `i >= 128`.
    pub const fn with_bit(self, i: usize, v: u8) -> Addr {
        assert!(i < 128, "bit index out of range");
        let mask = msb_mask(i);
        if v == 0 {
            Addr(self.0 & !mask)
        } else {
            Addr(self.0 | mask)
        }
    }

    /// The high 64 bits: the canonical network identifier (subnet prefix)
    /// under /64 addressing.
    pub const fn network_bits(self) -> u64 {
        (self.0 >> 64) as u64
    }

    /// The low 64 bits: the interface identifier under /64 addressing.
    pub const fn iid_bits(self) -> u64 {
        self.0 as u64
    }

    /// Keeps the first `len` bits and zeroes the rest.
    ///
    /// # Panics
    /// Panics if `len > 128`.
    pub const fn mask(self, len: u8) -> Addr {
        assert!(len <= 128, "prefix length out of range");
        Addr(self.0 & high_mask(len))
    }

    /// Length of the longest common prefix of `self` and `other`, in bits
    /// (0..=128).
    pub const fn common_prefix_len(self, other: Addr) -> u8 {
        checked_u8((self.0 ^ other.0).leading_zeros() as u128)
    }

    /// Interprets segments 1..3 (bits 16–48) as an embedded IPv4 address,
    /// as in 6to4 (`2002:AABB:CCDD::/48`).
    pub const fn v4_in_6to4(self) -> [u8; 4] {
        checked_u32((self.0 >> 80) & 0xffff_ffff).to_be_bytes()
    }

    /// Interprets the low 32 bits as an embedded IPv4 address, as in
    /// ISATAP and many ad hoc schemes.
    pub const fn v4_in_low32(self) -> [u8; 4] {
        checked_u32(self.0 & 0xffff_ffff).to_be_bytes()
    }

    /// Conversion to the standard library type (used in tests as a parsing
    /// and formatting oracle, and by callers doing real I/O).
    pub const fn to_std(self) -> Ipv6Addr {
        Ipv6Addr::from_bits(self.0)
    }

    /// Conversion from the standard library type.
    pub const fn from_std(a: Ipv6Addr) -> Addr {
        Addr(a.to_bits())
    }

    /// Formats the address as 32 lower-case hex characters with no
    /// separators — the fixed-width form used by the sort-based aggregate
    /// counter (paper footnote 3: `sort | cut -c1-$((p/4)) | uniq -c`).
    pub fn to_fixed_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Formats the address as its reverse-DNS pointer name under
    /// `ip6.arpa` (RFC 3596 §2.5): 32 nybbles in reverse order,
    /// dot-separated, e.g. `1.0.0.0…8.b.d.0.1.0.0.2.ip6.arpa`.
    pub fn to_ip6_arpa(self) -> String {
        const HEX: &[u8; 16] = b"0123456789abcdef";
        let mut out = String::with_capacity(72);
        for &n in self.nybbles().iter().rev() {
            // nybbles() yields 0..=15, so the table lookup is total.
            out.push(char::from(HEX[usize::from(n) & 0xf]));
            out.push('.');
        }
        out.push_str("ip6.arpa");
        out
    }

    /// Parses an `ip6.arpa` pointer name back to the address. Accepts an
    /// optional trailing dot and any ASCII case.
    pub fn from_ip6_arpa(s: &str) -> Result<Addr, ParseError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        let body = s
            .strip_suffix("ip6.arpa")
            .and_then(|b| b.strip_suffix('.'))
            .ok_or(ParseError::NotIp6Arpa)?;
        let mut v: u128 = 0;
        let mut count = 0usize;
        for part in body.split('.') {
            let mut chars = part.chars();
            let (Some(c), None) = (chars.next(), chars.next()) else {
                return Err(ParseError::GroupTooLong);
            };
            let d = c.to_digit(16).ok_or(ParseError::InvalidCharacter(c))?;
            if count >= 32 {
                return Err(ParseError::TooManyGroups);
            }
            // Nybbles arrive least-significant first.
            v |= shl128(d as u128, 4 * count);
            count += 1;
        }
        if count != 32 {
            return Err(ParseError::TooFewGroups);
        }
        Ok(Addr(v))
    }

    /// Parses the 32-hex-character fixed-width form produced by
    /// [`Addr::to_fixed_hex`].
    pub fn from_fixed_hex(s: &str) -> Result<Addr, ParseError> {
        if s.len() != 32 {
            return Err(ParseError::TooFewGroups);
        }
        let mut v: u128 = 0;
        for c in s.chars() {
            let d = c.to_digit(16).ok_or(ParseError::InvalidCharacter(c))?;
            v = (v << 4) | d as u128;
        }
        Ok(Addr(v))
    }
}

impl From<u128> for Addr {
    fn from(v: u128) -> Addr {
        Addr(v)
    }
}

impl From<Addr> for u128 {
    fn from(a: Addr) -> u128 {
        a.0
    }
}

impl From<Ipv6Addr> for Addr {
    fn from(a: Ipv6Addr) -> Addr {
        Addr::from_std(a)
    }
}

impl From<Addr> for Ipv6Addr {
    fn from(a: Addr) -> Ipv6Addr {
        a.to_std()
    }
}

// ---------------------------------------------------------------------------
// Parsing (RFC 4291 §2.2)
// ---------------------------------------------------------------------------

impl FromStr for Addr {
    type Err = ParseError;

    /// Parses RFC 4291 presentation format: up to eight hex groups
    /// separated by `:`, at most one `::` elision, and an optional
    /// dotted-quad IPv4 tail occupying the final 32 bits.
    fn from_str(s: &str) -> Result<Addr, ParseError> {
        parse_addr(s)
    }
}

fn parse_addr(s: &str) -> Result<Addr, ParseError> {
    if s.is_empty() {
        return Err(ParseError::Empty);
    }
    let b = s.as_bytes();

    // Locate the elision "::" if present.
    let mut elision: Option<usize> = None;
    let mut i = 0;
    while i + 1 < b.len() {
        if b[i] == b':' && b[i + 1] == b':' {
            if elision.is_some() {
                return Err(ParseError::MultipleElisions);
            }
            elision = Some(i);
            i += 2;
        } else {
            i += 1;
        }
    }
    // "::: " anywhere means two overlapping elisions.
    if s.contains(":::") {
        return Err(ParseError::MultipleElisions);
    }

    let (head, tail) = match elision {
        Some(pos) => (&s[..pos], &s[pos + 2..]),
        None => (s, ""),
    };

    let mut groups_head: Vec<u16> = Vec::with_capacity(8);
    let mut groups_tail: Vec<u16> = Vec::with_capacity(8);
    parse_groups(head, &mut groups_head, elision.is_none())?;
    if elision.is_some() {
        parse_groups(tail, &mut groups_tail, true)?;
    }

    let total = groups_head.len() + groups_tail.len();
    match elision {
        // "::" always stands for at least one zero group.
        Some(_) if total > 7 => return Err(ParseError::TooManyGroups),
        Some(_) => {}
        None if total > 8 => return Err(ParseError::TooManyGroups),
        None if total < 8 => return Err(ParseError::TooFewGroups),
        None => {}
    }

    let mut segs = [0u16; 8];
    let fill = 8 - total;
    for (k, g) in groups_head.iter().enumerate() {
        segs[k] = *g;
    }
    for (k, g) in groups_tail.iter().enumerate() {
        segs[groups_head.len() + fill + k] = *g;
    }
    Ok(Addr::from_segments(segs))
}

/// Parses a colon-separated run of hex groups, possibly ending in an IPv4
/// dotted quad (which contributes two 16-bit groups). `ipv4_allowed` is
/// true when this run ends the address.
fn parse_groups(s: &str, out: &mut Vec<u16>, _full_form: bool) -> Result<(), ParseError> {
    if s.is_empty() {
        return Ok(());
    }
    let parts: Vec<&str> = s.split(':').collect();
    for (idx, part) in parts.iter().enumerate() {
        if part.is_empty() {
            // split artifacts only legal from "::" which was removed.
            return Err(ParseError::StrayColon);
        }
        if part.contains('.') {
            // IPv4 tail: must be the final part.
            if idx != parts.len() - 1 {
                return Err(ParseError::BadIpv4Tail);
            }
            let [o0, o1, o2, o3] = parse_v4(part)?;
            out.push((u16::from(o0) << 8) | u16::from(o1));
            out.push((u16::from(o2) << 8) | u16::from(o3));
            return Ok(());
        }
        if part.len() > 4 {
            return Err(ParseError::GroupTooLong);
        }
        let mut g: u16 = 0;
        for c in part.chars() {
            let d = c.to_digit(16).ok_or(ParseError::InvalidCharacter(c))?;
            g = (g << 4) | checked_u16(u128::from(d));
        }
        out.push(g);
    }
    Ok(())
}

fn parse_v4(s: &str) -> Result<[u8; 4], ParseError> {
    let mut octets = [0u8; 4];
    let mut n = 0;
    for part in s.split('.') {
        if n == 4 || part.is_empty() || part.len() > 3 {
            return Err(ParseError::BadIpv4Tail);
        }
        // Reject leading zeros ("01") as inet_pton does.
        if part.len() > 1 && part.starts_with('0') {
            return Err(ParseError::BadIpv4Tail);
        }
        let mut v: u16 = 0;
        for c in part.chars() {
            let d = c.to_digit(10).ok_or(ParseError::BadIpv4Tail)?;
            // Widen before the arithmetic: three decimal digits cannot
            // overflow u128, and the narrowing back is checked.
            v = checked_u16(u128::from(v) * 10 + u128::from(d));
            if v > 255 {
                return Err(ParseError::BadIpv4Tail);
            }
        }
        octets[n] = checked_u8(u128::from(v));
        n += 1;
    }
    if n != 4 {
        return Err(ParseError::BadIpv4Tail);
    }
    Ok(octets)
}

// ---------------------------------------------------------------------------
// Formatting (RFC 5952 canonical form)
// ---------------------------------------------------------------------------

impl fmt::Display for Addr {
    /// Formats in RFC 5952 canonical form: lower-case hex, no leading
    /// zeros, the single longest run of two-or-more zero groups compressed
    /// to `::` (leftmost on ties).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let segs = self.segments();

        // Find the longest run of zero segments of length >= 2.
        let mut best_start = 0usize;
        let mut best_len = 0usize;
        let mut cur_start = 0usize;
        let mut cur_len = 0usize;
        for (i, &s) in segs.iter().enumerate() {
            if s == 0 {
                if cur_len == 0 {
                    cur_start = i;
                }
                cur_len += 1;
                if cur_len > best_len {
                    best_len = cur_len;
                    best_start = cur_start;
                }
            } else {
                cur_len = 0;
            }
        }
        if best_len < 2 {
            best_len = 0;
        }

        let mut i = 0;
        let mut first = true;
        while i < 8 {
            if best_len > 0 && i == best_start {
                // '::' supplies the separator for the group that follows it.
                f.write_str("::")?;
                i += best_len;
                if i >= 8 {
                    return Ok(());
                }
                write!(f, "{:x}", segs[i])?;
                i += 1;
                first = false;
                continue;
            }
            if !first {
                f.write_str(":")?;
            }
            write!(f, "{:x}", segs[i])?;
            first = false;
            i += 1;
        }
        Ok(())
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn parses_full_form() {
        let x = a("2001:0db8:0000:0001:001e:c2ff:fec0:11db");
        assert_eq!(
            x.segments(),
            [0x2001, 0xdb8, 0, 1, 0x1e, 0xc2ff, 0xfec0, 0x11db]
        );
    }

    #[test]
    fn parses_elision_everywhere() {
        assert_eq!(a("::"), Addr(0));
        assert_eq!(a("::1"), Addr(1));
        assert_eq!(a("1::"), Addr(1u128 << 112));
        assert_eq!(a("1::2"), Addr((1u128 << 112) | 2));
        assert_eq!(
            a("2001:db8::10:901").segments(),
            [0x2001, 0xdb8, 0, 0, 0, 0, 0x10, 0x901]
        );
    }

    #[test]
    fn parses_ipv4_tail() {
        let x = a("::ffff:192.0.2.1");
        assert_eq!(x.segments(), [0, 0, 0, 0, 0, 0xffff, 0xc000, 0x0201]);
        let y = a("64:ff9b::203.0.113.7");
        assert_eq!(y.segments()[6], 0xcb00);
        assert_eq!(y.segments()[7], 0x7107);
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            ":",
            ":::",
            "1:2:3",
            "1:2:3:4:5:6:7:8:9",
            "::g",
            "12345::",
            "1::2::3",
            "::1.2.3",
            "::1.2.3.4.5",
            "::256.1.1.1",
            "::01.2.3.4",
            "1.2.3.4",
            "2001:db8::1 ",
            " 2001:db8::1",
            "2001:db8:::1",
        ] {
            assert!(bad.parse::<Addr>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn formats_rfc5952() {
        for (input, want) in [
            ("2001:0DB8:0:0:0:0:0:1", "2001:db8::1"),
            ("2001:db8:0:1:1:1:1:1", "2001:db8:0:1:1:1:1:1"),
            ("2001:0:0:1:0:0:0:1", "2001:0:0:1::1"),
            ("2001:db8:0:0:1:0:0:1", "2001:db8::1:0:0:1"),
            ("0:0:0:0:0:0:0:0", "::"),
            ("0:0:0:0:0:0:0:1", "::1"),
            ("1:0:0:0:0:0:0:0", "1::"),
            ("fe80:0:0:0:1:0:0:1", "fe80::1:0:0:1"),
        ] {
            assert_eq!(input.parse::<Addr>().unwrap().to_string(), want);
        }
    }

    #[test]
    fn accessors_agree() {
        let x = a("2001:db8:4137:9e76:3031:f3fd:bbdd:2c2a");
        assert_eq!(x.segment(2), 0x4137);
        assert_eq!(x.nybble(8), 0x4);
        assert_eq!(x.nybble(31), 0xa);
        assert_eq!(x.network_bits(), 0x20010db841379e76);
        assert_eq!(x.iid_bits(), 0x3031f3fdbbdd2c2a);
        // bit 0..3 spell 0x2 = 0b0010
        assert_eq!([x.bit(0), x.bit(1), x.bit(2), x.bit(3)], [0, 0, 1, 0]);
    }

    #[test]
    fn batched_nybbles_agree_with_single() {
        for s in [
            "2001:db8:4137:9e76:3031:f3fd:bbdd:2c2a",
            "::",
            "::1",
            "ffff::ffff",
        ] {
            let x = a(s);
            let batch = x.nybbles();
            for (i, &n) in batch.iter().enumerate() {
                assert_eq!(n, x.nybble(i), "{s} nybble {i}");
            }
        }
    }

    #[test]
    fn mask_and_common_prefix() {
        let x = a("2001:db8:ffff:ffff:ffff:ffff:ffff:ffff");
        assert_eq!(x.mask(32), a("2001:db8::"));
        assert_eq!(x.mask(0), Addr(0));
        assert_eq!(x.mask(128), x);
        assert_eq!(a("2001:db8::1").common_prefix_len(a("2001:db8::2")), 126);
        assert_eq!(a("::").common_prefix_len(a("8000::")), 0);
        assert_eq!(a("::1").common_prefix_len(a("::1")), 128);
    }

    #[test]
    fn with_bit_roundtrip() {
        let x = a("2001:db8::");
        let y = x.with_bit(127, 1);
        assert_eq!(y, a("2001:db8::1"));
        assert_eq!(y.with_bit(127, 0), x);
    }

    #[test]
    fn fixed_hex_roundtrip() {
        let x = a("2001:db8::9:1");
        let h = x.to_fixed_hex();
        assert_eq!(h.len(), 32);
        assert_eq!(Addr::from_fixed_hex(&h).unwrap(), x);
        assert!(Addr::from_fixed_hex("abc").is_err());
        assert!(Addr::from_fixed_hex(&"g".repeat(32)).is_err());
    }

    #[test]
    fn std_conversion_roundtrip() {
        let x = a("2001:db8:10:1::103");
        assert_eq!(Addr::from_std(x.to_std()), x);
    }

    #[test]
    fn ip6_arpa_roundtrip_and_format() {
        let x = a("2001:db8::567:89ab");
        let ptr = x.to_ip6_arpa();
        assert!(ptr.ends_with(".ip6.arpa"));
        assert!(ptr.starts_with("b.a.9.8.7.6.5.0."));
        assert_eq!(Addr::from_ip6_arpa(&ptr).unwrap(), x);
        assert_eq!(Addr::from_ip6_arpa(&(ptr.clone() + ".")).unwrap(), x);
        // RFC 3596's own example shape: 32 labels + ip6.arpa.
        assert_eq!(ptr.split('.').count(), 34);
        let bad_cases: Vec<String> = vec![
            "ip6.arpa".into(),
            "1.2.ip6.arpa".into(),
            "x.".repeat(32) + "ip6.arpa",
            "1.".repeat(33) + "ip6.arpa",
            "1.".repeat(32) + "in-addr.arpa",
            "11.".repeat(16) + "ip6.arpa",
        ];
        for bad in &bad_cases {
            assert!(Addr::from_ip6_arpa(bad).is_err(), "accepted {bad:?}");
        }
    }
}
