//! The [`Prefix`] type: an IPv6 address block `addr/len`.

use crate::bits::{high_mask, msb_mask8};
use crate::{Addr, ParseError};
use std::fmt;
use std::str::FromStr;

/// An IPv6 prefix (CIDR block): an address and a length in bits.
///
/// A `Prefix` is always stored canonically — bits beyond `len` are zero —
/// so equality and ordering behave as block identity. The natural ordering
/// (network address first, then ascending length) puts a block before the
/// blocks it contains, which the trie and the densify report rely on.
///
/// ```
/// use v6census_addr::Prefix;
/// let p: Prefix = "2001:db8::/32".parse().unwrap();
/// assert!(p.contains_addr("2001:db8:1::1".parse().unwrap()));
/// assert_eq!(p.to_string(), "2001:db8::/32");
/// // Canonicalization zeroes host bits:
/// let q: Prefix = "2001:db8::ff/120".parse().unwrap();
/// assert_eq!(q.to_string(), "2001:db8::/120");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix {
    addr: Addr,
    len: u8,
}

impl Prefix {
    /// The entire address space, `::/0`.
    pub const ALL: Prefix = Prefix {
        addr: Addr(0),
        len: 0,
    };

    /// Creates a prefix, zeroing any bits beyond `len`.
    ///
    /// # Panics
    /// Panics if `len > 128`.
    pub const fn new(addr: Addr, len: u8) -> Prefix {
        assert!(len <= 128, "prefix length out of range");
        Prefix {
            addr: addr.mask(len),
            len,
        }
    }

    /// Creates a host prefix (`/128`) for a single address.
    pub const fn host(addr: Addr) -> Prefix {
        Prefix { addr, len: 128 }
    }

    /// The network address (host bits zero).
    pub const fn addr(self) -> Addr {
        self.addr
    }

    /// The prefix length in bits.
    pub const fn len(self) -> u8 {
        self.len
    }

    /// True only for `::/0` (provided for clippy symmetry with `len`).
    pub const fn is_empty(self) -> bool {
        self.len == 0
    }

    /// Number of addresses the block spans: 2^(128−len). Returns `None`
    /// for `::/0`, whose span (2^128) does not fit in `u128`.
    pub const fn span(self) -> Option<u128> {
        // 2^(128−len) is one past the host mask; the add overflows u128
        // exactly for `::/0`, whose span (2^128) is unrepresentable.
        (!high_mask(self.len)).checked_add(1)
    }

    /// The last address inside the block.
    pub const fn last_addr(self) -> Addr {
        Addr(self.addr.0 | !high_mask(self.len))
    }

    /// True when `a` lies inside this block.
    pub const fn contains_addr(self, a: Addr) -> bool {
        a.mask(self.len).0 == self.addr.0
    }

    /// True when `other` is equal to or more specific than this block.
    pub const fn contains(self, other: Prefix) -> bool {
        other.len >= self.len && other.addr.mask(self.len).0 == self.addr.0
    }

    /// True when the two blocks share any address.
    pub const fn overlaps(self, other: Prefix) -> bool {
        self.contains(other) || other.contains(self)
    }

    /// The immediate parent block (one bit shorter), or `None` for `::/0`.
    pub const fn parent(self) -> Option<Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(Prefix::new(self.addr, self.len.saturating_sub(1)))
        }
    }

    /// The two immediate children (one bit longer), or `None` for `/128`.
    pub const fn children(self) -> Option<(Prefix, Prefix)> {
        if self.len == 128 {
            None
        } else {
            // len < 128 here, so the saturating add never saturates.
            let left = Prefix {
                addr: self.addr,
                len: self.len.saturating_add(1),
            };
            let right = Prefix {
                addr: Addr(self.addr.0 | msb_mask8(self.len)),
                len: self.len.saturating_add(1),
            };
            Some((left, right))
        }
    }

    /// Truncates an address to its containing `/len` block.
    ///
    /// # Panics
    /// Panics if `len > 128`.
    pub const fn of(a: Addr, len: u8) -> Prefix {
        Prefix::new(a, len)
    }

    /// Parses without requiring canonical form — host bits are zeroed.
    pub fn from_str_lossy(s: &str) -> Result<Prefix, ParseError> {
        Self::parse_inner(s, false)
    }

    /// Parses and rejects input whose host bits are non-zero.
    pub fn from_str_strict(s: &str) -> Result<Prefix, ParseError> {
        Self::parse_inner(s, true)
    }

    fn parse_inner(s: &str, strict: bool) -> Result<Prefix, ParseError> {
        let (addr_s, len_s) = s.split_once('/').ok_or(ParseError::BadPrefixLength)?;
        let addr: Addr = addr_s.parse()?;
        if len_s.is_empty() || len_s.len() > 3 || !len_s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseError::BadPrefixLength);
        }
        let len: u16 = len_s.parse().map_err(|_| ParseError::BadPrefixLength)?;
        if len > 128 {
            return Err(ParseError::PrefixLengthRange(len));
        }
        let p = Prefix::new(addr, crate::cast::checked_u8(u128::from(len)));
        if strict && p.addr != addr {
            return Err(ParseError::HostBitsSet);
        }
        Ok(p)
    }
}

impl FromStr for Prefix {
    type Err = ParseError;

    /// Equivalent to [`Prefix::from_str_lossy`].
    fn from_str(s: &str) -> Result<Prefix, ParseError> {
        Prefix::from_str_lossy(s)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Prefix({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }
    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn canonicalizes() {
        assert_eq!(p("2001:db8::1/64"), p("2001:db8::/64"));
        assert_eq!(p("ffff::/0"), Prefix::ALL);
    }

    #[test]
    fn strict_rejects_host_bits() {
        assert!(Prefix::from_str_strict("2001:db8::1/64").is_err());
        assert!(Prefix::from_str_strict("2001:db8::/64").is_ok());
    }

    #[test]
    fn containment() {
        let net = p("2001:db8::/32");
        assert!(net.contains(p("2001:db8:1::/48")));
        assert!(net.contains(net));
        assert!(!net.contains(p("2001:db9::/48")));
        assert!(!p("2001:db8:1::/48").contains(net));
        assert!(net.contains_addr(a("2001:db8::1")));
        assert!(!net.contains_addr(a("2001:db9::1")));
    }

    #[test]
    fn overlap_is_symmetric_containment() {
        let a_ = p("2001:db8::/32");
        let b = p("2001:db8:ff::/48");
        let c = p("2001:db9::/32");
        assert!(a_.overlaps(b) && b.overlaps(a_));
        assert!(!a_.overlaps(c));
    }

    #[test]
    fn span_and_last() {
        assert_eq!(p("2001:db8::/112").span(), Some(65536));
        assert_eq!(p("::/0").span(), None);
        assert_eq!(p("2001:db8::/112").last_addr(), a("2001:db8::ffff"));
        assert_eq!(Prefix::ALL.last_addr(), Addr(u128::MAX));
    }

    #[test]
    fn family_navigation() {
        let x = p("2001:db8::/33");
        assert_eq!(x.parent().unwrap(), p("2001:db8::/32"));
        let (l, r) = p("2001:db8::/32").children().unwrap();
        assert_eq!(l, p("2001:db8::/33"));
        assert_eq!(r, p("2001:db8:8000::/33"));
        assert!(Prefix::ALL.parent().is_none());
        assert!(Prefix::host(a("::1")).children().is_none());
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "2001:db8::",
            "2001:db8::/",
            "2001:db8::/129",
            "2001:db8::/x",
            "/64",
        ] {
            assert!(bad.parse::<Prefix>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn ordering_parent_before_child() {
        let mut v = vec![p("2001:db8::/48"), p("2001:db8::/32"), p("2001:db7::/32")];
        v.sort();
        assert_eq!(
            v,
            vec![p("2001:db7::/32"), p("2001:db8::/32"), p("2001:db8::/48")]
        );
    }

    #[test]
    fn display_roundtrip() {
        for s in ["::/0", "2001:db8::/32", "ff00::/8", "2001:db8::1/128"] {
            assert_eq!(p(s).to_string(), s);
        }
    }
}
