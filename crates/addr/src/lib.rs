//! IPv6 address substrate for the `v6census` workspace.
//!
//! This crate provides everything the classifiers in `v6census-core` need to
//! know about a single IPv6 address *in isolation*:
//!
//! * [`Addr`] — a `u128`-backed IPv6 address with RFC 4291 text parsing,
//!   RFC 5952 canonical formatting, and bit/nybble/16-bit-segment accessors
//!   (the three "resolutions" of the paper's Multi-Resolution Aggregate
//!   analysis).
//! * [`Prefix`] — an address block `addr/len`, canonicalized so that bits
//!   beyond the prefix length are zero.
//! * [`Mac`] — a 48-bit IEEE MAC address and the modified EUI-64
//!   encoding/decoding used by SLAAC (RFC 4862 / RFC 4291 §2.5.1).
//! * [`special`] — the registry of special-use prefixes relevant to the
//!   study: Teredo, 6to4, ISATAP interface identifiers, documentation,
//!   link-local, unique-local, multicast, and the global unicast space.
//! * [`scheme`] — content-based classification of an address into the
//!   addressing schemes of §3 of the paper (Teredo / ISATAP / 6to4 /
//!   EUI-64 / embedded IPv4 / low-IID / structured / pseudorandom).
//! * [`malone`] — a reimplementation of the content-only privacy-address
//!   heuristic of Malone (PAM 2008), the baseline the paper's temporal
//!   classifier is contrasted with in §2.
//!
//! The crate is dependency-light and panic-free on arbitrary input: parsers
//! return [`ParseError`], and every accessor is bounds-checked with a
//! documented panic condition.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
pub mod bits;
pub mod cast;
mod error;
mod iid;
mod mac;
mod prefix;

pub mod malone;
pub mod scheme;
pub mod special;

pub use addr::Addr;
pub use error::ParseError;
pub use iid::{embedded_ipv4, iid_entropy_bits, is_low_iid, Iid};
pub use mac::Mac;
pub use prefix::Prefix;
pub use scheme::AddressScheme;
