//! Content-based classification of an address into the addressing schemes
//! of §3 of the paper.
//!
//! Content-only classification is *exact* for the transition mechanisms
//! (their formats are reserved or strongly marked) and *heuristic* for
//! everything else — which is precisely the paper's motivation for adding
//! temporal analysis. The classifier here produces the categories used to
//! build Table 1 and to cull transition mechanisms before temporal/spatial
//! classification.

use crate::{embedded_ipv4, iid_entropy_bits, special, Addr, Iid, Mac};

/// The addressing scheme an address appears (by content alone) to use.
///
/// Variants are ordered by the precedence the classifier applies: the
/// transition mechanisms are checked first because their formats are
/// authoritative; the remaining variants are content heuristics over the
/// IID of "Other" (native-transport) addresses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AddressScheme {
    /// Teredo (RFC 4380): inside `2001::/32`.
    Teredo,
    /// ISATAP (RFC 5214): IID is `[02]00:5efe` + embedded IPv4.
    Isatap,
    /// 6to4 (RFC 3056): inside `2002::/16`.
    SixToFour,
    /// SLAAC with modified EUI-64 IID (RFC 4862): `ff:fe` marker present.
    /// Carries the embedded MAC.
    Eui64(Mac),
    /// An IPv4 address embedded ad hoc in the low 32 bits (dual-stack
    /// router/host convenience, §3).
    EmbeddedV4([u8; 4]),
    /// "Low" IID: only the bottom 16 bits used — manual assignment or a
    /// small DHCPv6 pool (Figure 1 sample (i)).
    LowIid,
    /// Structured value in the low 64 bits: small IID (≤32 bits) with
    /// visible subnetting structure (Figure 1 sample (ii)).
    Structured,
    /// Apparently pseudorandom IID — consistent with RFC 4941 privacy
    /// extensions or RFC 7217 stable-privacy (Figure 1 sample (iv)).
    /// Content alone cannot distinguish these; the temporal classifier
    /// can.
    Pseudorandom,
    /// None of the above: a mid-entropy IID that is neither clearly
    /// structured nor clearly random.
    Unclassified,
}

impl AddressScheme {
    /// True for the three early transition mechanisms the census culls
    /// from the "Other" population (§4.1).
    pub const fn is_transition_mechanism(self) -> bool {
        matches!(
            self,
            AddressScheme::Teredo | AddressScheme::Isatap | AddressScheme::SixToFour
        )
    }

    /// True for EUI-64 (carries a persistent, globally meaningful IID).
    pub const fn is_eui64(self) -> bool {
        matches!(self, AddressScheme::Eui64(_))
    }

    /// A short stable label for reports.
    pub const fn label(self) -> &'static str {
        match self {
            AddressScheme::Teredo => "teredo",
            AddressScheme::Isatap => "isatap",
            AddressScheme::SixToFour => "6to4",
            AddressScheme::Eui64(_) => "eui64",
            AddressScheme::EmbeddedV4(_) => "embedded-v4",
            AddressScheme::LowIid => "low-iid",
            AddressScheme::Structured => "structured",
            AddressScheme::Pseudorandom => "pseudorandom",
            AddressScheme::Unclassified => "unclassified",
        }
    }
}

/// Entropy (bits) at or above which an IID is deemed pseudorandom. Chosen
/// so RFC 4941 IIDs (uniform 64-bit less the fixed u-bit) essentially
/// always clear it while hand-assigned and subnet-structured IIDs do not;
/// see the calibration test below and `tests/scheme_calibration.rs`.
pub const PSEUDORANDOM_ENTROPY_BITS: f64 = 34.0;

/// Classifies an address by content alone (§3 categories).
///
/// Precedence: Teredo and 6to4 by reserved prefix, ISATAP by IID marker,
/// then EUI-64 by IID marker, then embedded IPv4, then IID size
/// heuristics, then the entropy heuristic.
///
/// Note that 6to4 wins over IID structure: a 6to4 address with an EUI-64
/// IID is still 6to4 for culling purposes (Table 1 counts "EUI-64 addr
/// (!6to4)" separately for exactly this reason — use
/// [`classify_beneath_6to4`] to see through the 6to4 prefix).
pub fn classify(a: Addr) -> AddressScheme {
    if special::is_teredo(a) {
        return AddressScheme::Teredo;
    }
    if special::is_6to4(a) {
        return AddressScheme::SixToFour;
    }
    classify_iid_content(a)
}

/// Classifies the IID content of an address, ignoring whether the network
/// prefix is 6to4 — used for the Table 1 "EUI-64 addr (!6to4)" split.
pub fn classify_beneath_6to4(a: Addr) -> AddressScheme {
    classify_iid_content(a)
}

fn classify_iid_content(a: Addr) -> AddressScheme {
    let iid = Iid::of(a);
    if iid.is_isatap() {
        return AddressScheme::Isatap;
    }
    if let Some(mac) = iid.eui64_mac() {
        return AddressScheme::Eui64(mac);
    }
    if let Some(v4) = embedded_ipv4(a) {
        return AddressScheme::EmbeddedV4(v4);
    }
    if iid.is_low() {
        return AddressScheme::LowIid;
    }
    if iid.is_small() {
        return AddressScheme::Structured;
    }
    let e = iid_entropy_bits(iid);
    if e >= PSEUDORANDOM_ENTROPY_BITS {
        AddressScheme::Pseudorandom
    } else if e < 20.0 {
        AddressScheme::Structured
    } else {
        AddressScheme::Unclassified
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn figure1_samples() {
        // The four sample addresses of the paper's Figure 1.
        assert_eq!(classify(a("2001:db8:10:1::103")), AddressScheme::LowIid);
        assert_eq!(
            classify(a("2001:db8:167:1109::10:901")),
            AddressScheme::Structured
        );
        assert!(matches!(
            classify(a("2001:db8:0:1cdf:21e:c2ff:fec0:11db")),
            AddressScheme::Eui64(_)
        ));
        assert_eq!(
            classify(a("2001:db8:4137:9e76:3031:f3fd:bbdd:2c2a")),
            AddressScheme::Pseudorandom
        );
    }

    #[test]
    fn transition_mechanisms_take_precedence() {
        // A 6to4 address with an EUI-64 IID is 6to4 at top level...
        let sixtofour_eui = a("2002:c000:0201:1:21e:c2ff:fec0:11db");
        assert_eq!(classify(sixtofour_eui), AddressScheme::SixToFour);
        // ...but classify_beneath_6to4 sees the EUI-64.
        assert!(matches!(
            classify_beneath_6to4(sixtofour_eui),
            AddressScheme::Eui64(_)
        ));
        assert_eq!(classify(a("2001::1")), AddressScheme::Teredo);
        assert_eq!(
            classify(a("2400::200:5efe:192.0.2.1")),
            AddressScheme::Isatap
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(AddressScheme::SixToFour.label(), "6to4");
        assert_eq!(AddressScheme::Pseudorandom.label(), "pseudorandom");
    }

    #[test]
    fn transition_predicate() {
        assert!(AddressScheme::Teredo.is_transition_mechanism());
        assert!(AddressScheme::Isatap.is_transition_mechanism());
        assert!(AddressScheme::SixToFour.is_transition_mechanism());
        assert!(!AddressScheme::Pseudorandom.is_transition_mechanism());
        assert!(!AddressScheme::Eui64(Mac::PAPER_DUPLICATE).is_transition_mechanism());
    }

    #[test]
    fn embedded_v4_scheme() {
        assert_eq!(
            classify(a("2600:db8:10:1::c633:6407")), // 198.51.100.7
            AddressScheme::EmbeddedV4([198, 51, 100, 7])
        );
    }
}
