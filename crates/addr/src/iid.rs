//! Interface-identifier (IID) content analysis.
//!
//! Under /64 addressing the low 64 bits of an address are the interface
//! identifier. The paper's content-based classification (§3) and the
//! Malone baseline (§2) both reason about IID *structure*: EUI-64 markers,
//! embedded IPv4 addresses, small ("low") values typical of manual
//! assignment, and apparent randomness typical of RFC 4941 privacy
//! addresses.

use crate::cast::{checked_u32, checked_u8};
use crate::{Addr, Mac};

/// A 64-bit interface identifier extracted from an address, with
/// content-analysis helpers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Iid(pub u64);

impl Iid {
    /// Extracts the IID (low 64 bits) of an address.
    pub const fn of(a: Addr) -> Iid {
        Iid(a.iid_bits())
    }

    /// The MAC embedded by modified EUI-64, if the `ff:fe` marker is
    /// present.
    pub const fn eui64_mac(self) -> Option<Mac> {
        Mac::from_modified_eui64(self.0)
    }

    /// True when the IID carries the modified-EUI-64 `ff:fe` marker.
    pub const fn is_eui64(self) -> bool {
        self.eui64_mac().is_some()
    }

    /// The RFC 4291 "u" (universal/local) bit of the IID — bit 70 of the
    /// address, bit 6 of the IID's first octet. RFC 4941 privacy IIDs set
    /// it to 0; universal EUI-64 IIDs set it to 1. The MRA privacy
    /// signature in the paper (§5.2.1, Figure 2a) is the per-bit
    /// aggregation ratio dipping to ~1 exactly at this bit.
    pub const fn u_bit(self) -> u8 {
        checked_u8(((self.0 >> 57) & 1) as u128)
    }

    /// True when the IID is "low": at most the bottom 16 bits are used.
    /// Typical of manual assignment (`::1`, `::103`) and DHCPv6 pools.
    pub const fn is_low(self) -> bool {
        self.0 <= 0xffff
    }

    /// True when the IID uses only the bottom 32 bits (covers "low" plus
    /// structured schemes like `::10:901` from the paper's Figure 1).
    pub const fn is_small(self) -> bool {
        self.0 <= 0xffff_ffff
    }

    /// The IPv4 address embedded in the low 32 bits, presented as octets.
    /// Meaningful for ISATAP (`::[02]00:5efe:a.b.c.d`) and the ad hoc
    /// dual-stack conventions of §3.
    pub const fn low32_as_v4(self) -> [u8; 4] {
        checked_u32((self.0 & 0xffff_ffff) as u128).to_be_bytes()
    }

    /// True when the IID matches the ISATAP format (RFC 5214 §6.1):
    /// `[02]00:5efe` followed by an embedded IPv4 address. Both the
    /// universal (`0200`) and local (`0000`) forms are accepted.
    pub const fn is_isatap(self) -> bool {
        let top = self.0 >> 32;
        top == 0x0000_5efe || top == 0x0200_5efe
    }

    /// Number of leading zero bits in the IID.
    pub const fn leading_zeros(self) -> u32 {
        self.0.leading_zeros()
    }

    /// Number of one-bits in the IID.
    pub const fn ones(self) -> u32 {
        self.0.count_ones()
    }

    /// All 16 nybbles of the IID at once, most significant first — the
    /// batched form used by the entropy estimator: one pass over the
    /// big-endian bytes instead of 16 independent 64-bit shifts.
    pub const fn nybbles(self) -> [u8; 16] {
        let bytes = self.0.to_be_bytes();
        let mut out = [0u8; 16];
        let mut i = 0;
        while i < 8 {
            out[2 * i] = bytes[i] >> 4;
            out[2 * i + 1] = bytes[i] & 0xf;
            i += 1;
        }
        out
    }
}

/// Extracts the IPv4 address that an *ad hoc* scheme may have embedded in
/// the low 32 bits of `a`, if the surrounding IID bytes are zero and the
/// embedded value looks like a plausible global-unicast IPv4 address.
///
/// This intentionally conservative test mirrors the paper's observation
/// (§3) that some router and dual-stack host interfaces embed an IPv4
/// address by convenience: it requires `xxxx:xxxx::a.b.c.d` shape with the
/// IID's top 32 bits zero, and rejects `0.x`, `127.x`, `10.x`, `192.168.x`,
/// `172.16-31.x`, multicast/reserved (≥224) and `169.254.x` values.
pub fn embedded_ipv4(a: Addr) -> Option<[u8; 4]> {
    let iid = Iid::of(a);
    if iid.0 == 0 || iid.0 > 0xffff_ffff {
        return None;
    }
    let v4 = iid.low32_as_v4();
    let [o0, o1, _, _] = v4;
    let plausible = match o0 {
        0 | 10 | 127 => false,
        169 if o1 == 254 => false,
        172 if (16..=31).contains(&o1) => false,
        192 if o1 == 168 => false,
        x if x >= 224 => false,
        _ => true,
    };
    // Require all four octets in dotted form to be "interesting": a value
    // like ::101 would decode as 0.0.1.1 and is rejected above via octet 0.
    if plausible {
        Some(v4)
    } else {
        None
    }
}

/// True when the IID of `a` is "low" per [`Iid::is_low`].
pub fn is_low_iid(a: Addr) -> bool {
    Iid::of(a).is_low()
}

/// A crude entropy estimate, in bits, of an IID — the metric behind
/// Malone-style content-only privacy detection (§2 of the paper; Malone,
/// PAM 2008).
///
/// Detecting randomness in a single 63-bit string is fundamentally hard
/// (the paper's motivation for temporal classification), so this is a
/// heuristic: it scores the IID's 16 nybbles by a first-order empirical
/// model — distinct-nybble spread and adjacent-nybble changes — and
/// returns a value in `[0, 64]`. Pseudorandom IIDs land high (≳ 40);
/// manual/structured IIDs land low.
pub fn iid_entropy_bits(iid: Iid) -> f64 {
    let mut counts = [0u32; 16];
    let mut transitions = 0u32;
    let mut prev: Option<u8> = None;
    for &n in &iid.nybbles() {
        counts[usize::from(n) & 0xf] += 1;
        if let Some(p) = prev {
            if p != n {
                // 15 transitions at most; saturation spells the policy.
                transitions = transitions.saturating_add(1);
            }
        }
        prev = Some(n);
    }
    // Shannon entropy of the nybble histogram, scaled to the 16 nybbles.
    let mut h = 0.0f64;
    for &c in &counts {
        if c > 0 {
            let p = c as f64 / 16.0;
            h -= p * p.log2();
        }
    }
    let histogram_bits = h * 16.0; // up to 64 when all nybbles distinct-ish
                                   // Penalize runs: structured IIDs have few adjacent changes.
    let transition_factor = transitions as f64 / 15.0;
    histogram_bits * (0.5 + 0.5 * transition_factor)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn eui64_detection() {
        assert!(Iid::of(a("2001:db8:0:1cdf:21e:c2ff:fec0:11db")).is_eui64());
        assert!(!Iid::of(a("2001:db8:4137:9e76:3031:f3fd:bbdd:2c2a")).is_eui64());
    }

    #[test]
    fn ubit() {
        // EUI-64 from a universal MAC: u-bit 1.
        assert_eq!(Iid::of(a("2001:db8::21e:c2ff:fec0:11db")).u_bit(), 1);
        // Privacy-style IID with u-bit cleared.
        assert_eq!(Iid::of(a("2001:db8::3031:f3fd:bbdd:2c2a")).u_bit(), 0);
    }

    #[test]
    fn low_and_small() {
        assert!(Iid::of(a("2001:db8::103")).is_low());
        assert!(!Iid::of(a("2001:db8::10:901")).is_low());
        assert!(Iid::of(a("2001:db8::10:901")).is_small());
        assert!(!Iid::of(a("2001:db8::1:0:0:1")).is_small());
    }

    #[test]
    fn isatap_forms() {
        assert!(Iid::of(a("2001:db8::5efe:192.0.2.1")).is_isatap());
        assert!(Iid::of(a("2001:db8::200:5efe:192.0.2.1")).is_isatap());
        assert!(!Iid::of(a("2001:db8::5eff:192.0.2.1")).is_isatap());
    }

    #[test]
    fn embedded_v4() {
        assert_eq!(
            embedded_ipv4(a("2001:db8::c000:0201")),
            Some([192, 0, 2, 1])
        );
        // Small manual IIDs decode to 0.x and are rejected.
        assert_eq!(embedded_ipv4(a("2001:db8::103")), None);
        // Private ranges rejected.
        assert_eq!(embedded_ipv4(a("2001:db8::0a00:0001")), None); // 10.0.0.1
        assert_eq!(embedded_ipv4(a("2001:db8::c0a8:0001")), None); // 192.168.0.1
        assert_eq!(embedded_ipv4(a("2001:db8::ac10:0001")), None); // 172.16.0.1
        assert_eq!(embedded_ipv4(a("2001:db8::a9fe:0001")), None); // 169.254.0.1
        assert_eq!(embedded_ipv4(a("2001:db8::e000:0001")), None); // 224.0.0.1
                                                                   // High IID bits set -> not an embedded v4.
        assert_eq!(embedded_ipv4(a("2001:db8::1:c000:0201")), None);
    }

    #[test]
    fn entropy_separates_random_from_structured() {
        let random = iid_entropy_bits(Iid::of(a("2001:db8::3031:f3fd:bbdd:2c2a")));
        let manual = iid_entropy_bits(Iid::of(a("2001:db8::103")));
        let structured = iid_entropy_bits(Iid::of(a("2001:db8::10:901")));
        assert!(random > 30.0, "random scored {random}");
        assert!(manual < 15.0, "manual scored {manual}");
        assert!(
            structured < random,
            "structured {structured} vs random {random}"
        );
    }

    #[test]
    fn batched_nybbles_agree_with_shifts() {
        for s in [
            "2001:db8::3031:f3fd:bbdd:2c2a",
            "::",
            "::1",
            "2001:db8::10:901",
        ] {
            let iid = Iid::of(a(s));
            let batch = iid.nybbles();
            for (i, &n) in batch.iter().enumerate() {
                let want = (iid.0 >> (60 - 4 * i)) & 0xf;
                assert_eq!(u64::from(n), want, "{s} nybble {i}");
            }
        }
    }
}
