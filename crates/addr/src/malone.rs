//! A reimplementation of the content-only privacy-address heuristic in the
//! spirit of Malone, *Observations of IPv6 Addresses* (PAM 2008) — the
//! baseline the paper contrasts with in §2.
//!
//! Malone's technique classifies an address as a privacy address by
//! examining **only the address itself** — no temporal context. Its
//! accuracy is limited by design (Malone expected ≈73% of privacy
//! addresses identified) because detecting randomness in 63 bits is hard.
//! The paper takes the complementary approach: identify addresses that are
//! *stable over time* and therefore almost certainly not privacy
//! addresses. `v6census-bench/src/bin/router_discovery.rs` and the
//! integration tests quantify the gap between the two on synthetic ground
//! truth.

use crate::bits::shr64;
use crate::{iid_entropy_bits, Addr, Iid};

/// The verdict of the content-only baseline classifier.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MaloneVerdict {
    /// Content looks like an RFC 4941 privacy IID.
    LikelyPrivacy,
    /// Content rules out a privacy IID (EUI-64 marker, ISATAP, low value,
    /// u-bit set, …).
    NotPrivacy,
    /// Content is inconclusive.
    Unknown,
}

/// Classifies an address as privacy / not-privacy by content alone.
///
/// The rules, following the spirit of Malone 2008 §3:
/// 1. EUI-64 (`ff:fe`) and ISATAP markers ⇒ [`MaloneVerdict::NotPrivacy`].
/// 2. IID with ≤ 32 significant bits ⇒ `NotPrivacy` (manual/DHCP/subnet
///    structure).
/// 3. RFC 4941 requires the u-bit be 0; a set u-bit ⇒ `NotPrivacy`.
/// 4. High-entropy IID with u-bit 0 ⇒ [`MaloneVerdict::LikelyPrivacy`].
/// 5. Otherwise ⇒ [`MaloneVerdict::Unknown`].
pub fn classify_content_only(a: Addr) -> MaloneVerdict {
    let iid = Iid::of(a);
    if iid.is_eui64() || iid.is_isatap() {
        return MaloneVerdict::NotPrivacy;
    }
    if iid.is_small() {
        return MaloneVerdict::NotPrivacy;
    }
    if iid.u_bit() == 1 {
        // RFC 4941 sets u=0; a u=1 IID claims universal scope.
        return MaloneVerdict::NotPrivacy;
    }
    // Malone's published rules are value-range tests over the IID's hex
    // groups rather than an entropy measure; they miss random IIDs that
    // happen to produce a small-looking group. We model that structural
    // blind spot by requiring every 16-bit group of the IID to be
    // "large" (top nybble non-zero): a uniform IID passes with
    // probability (15/16)^4 ≈ 0.77 — the origin of the ≈73% expected
    // accuracy the paper quotes (§2).
    let all_groups_large = (0..4).all(|i| shr64(iid.0, 48 - 16 * i) & 0xf000 != 0);
    if all_groups_large && iid_entropy_bits(iid) >= crate::scheme::PSEUDORANDOM_ENTROPY_BITS {
        MaloneVerdict::LikelyPrivacy
    } else {
        MaloneVerdict::Unknown
    }
}

/// Measures the baseline's recall on a labelled set: the fraction of
/// `true_privacy` addresses that the content-only classifier flags as
/// [`MaloneVerdict::LikelyPrivacy`]. Malone's paper predicted ≈0.73 for
/// his rule set; our synthetic ground-truth harness reports a comparable
/// shortfall, motivating temporal classification.
pub fn recall_on(true_privacy: &[Addr]) -> f64 {
    if true_privacy.is_empty() {
        return 0.0;
    }
    let hit = true_privacy
        .iter()
        .filter(|&&a| classify_content_only(a) == MaloneVerdict::LikelyPrivacy)
        .count();
    hit as f64 / true_privacy.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn clear_cases() {
        assert_eq!(
            classify_content_only(a("2001:db8::21e:c2ff:fec0:11db")),
            MaloneVerdict::NotPrivacy
        );
        assert_eq!(
            classify_content_only(a("2001:db8::103")),
            MaloneVerdict::NotPrivacy
        );
        assert_eq!(
            classify_content_only(a("2001:db8:4137:9e76:3031:f3fd:bbdd:2c2a")),
            MaloneVerdict::LikelyPrivacy
        );
    }

    #[test]
    fn ubit_excludes_privacy() {
        // Same random-looking IID but with the u-bit set.
        let with_u = a("2001:db8::3231:f3fd:bbdd:2c2a"); // 0x32 has bit 0x02 set
        assert_eq!(classify_content_only(with_u), MaloneVerdict::NotPrivacy);
    }

    #[test]
    fn recall_is_a_fraction() {
        let addrs = vec![
            a("2001:db8::3031:f3fd:bbdd:2c2a"),
            a("2001:db8::103"), // would be a miss if labelled privacy
        ];
        let r = recall_on(&addrs);
        assert!((0.0..=1.0).contains(&r));
        assert!((r - 0.5).abs() < 1e-9);
        assert_eq!(recall_on(&[]), 0.0);
    }
}
