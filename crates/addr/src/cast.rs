//! Checked narrowing casts for bit/nybble math.
//!
//! The workspace's cast-safety contract (lint rule `L003`) bans raw
//! `as u8/u16/u32/usize` in the address and trie crates: a raw `as`
//! silently truncates, and in 128-bit address arithmetic a silent
//! truncation is a wrong-answer bug, not a crash. These helpers are the
//! sanctioned narrowing path: each `debug_assert!`s that the value fits
//! the target type, so a masking mistake fails loudly under tests and
//! fuzzing while release builds pay nothing.
//!
//! Callers narrow in two steps that make the intent auditable:
//!
//! * widening or same-width moves use the standard lossless
//!   `u16::from` / `u32::from` / `usize::from`;
//! * genuinely narrowing moves mask first, then call `checked_*`:
//!   `checked_u8(v & 0xf)` — the mask proves the range, the helper
//!   enforces it.
//!
//! Every helper is a `const fn` taking `u128` (the widest type in the
//! workspace) so the address accessors, which are `const`, can use them;
//! widen the argument with `u128::from` or a lossless `as u128`.
//!
//! # Release-mode policy
//!
//! The `debug_assert!`s compile away in release builds: a `checked_*`
//! call handed an out-of-range value in release **truncates silently**,
//! exactly like the raw `as` it replaces. The helpers are therefore not
//! a runtime defence — they are debug-build tripwires plus an auditable
//! narrowing vocabulary. The enforced guarantee is static: lint rule
//! `R002` (bit-domain-safety, `crates/lint/src/dataflow.rs`) runs an
//! interval dataflow over every non-test caller in the `R002` scope and
//! proves at each call site that the argument already fits the target
//! type, failing CI with a witness trace otherwise. The masked casts in
//! the helper bodies below are proven the same way — R002 assumes each
//! helper's documented bound at entry (assume–guarantee) and discharges
//! `L003`'s syntactic findings on these lines, so the bodies carry no
//! suppression pragmas.

/// Narrows to `u8`, debug-asserting the value fits.
#[inline]
#[must_use]
pub const fn checked_u8(v: u128) -> u8 {
    debug_assert!(v <= u8::MAX as u128, "checked_u8 truncates");
    (v & 0xff) as u8
}

/// Narrows to `u16`, debug-asserting the value fits. 16-bit values are
/// the paper's "segment" resolution, hence the alias [`checked_seg`].
#[inline]
#[must_use]
pub const fn checked_u16(v: u128) -> u16 {
    debug_assert!(v <= u16::MAX as u128, "checked_u16 truncates");
    (v & 0xffff) as u16
}

/// Narrows to `u32`, debug-asserting the value fits.
#[inline]
#[must_use]
pub const fn checked_u32(v: u128) -> u32 {
    debug_assert!(v <= u32::MAX as u128, "checked_u32 truncates");
    (v & 0xffff_ffff) as u32
}

/// Narrows to `usize`, debug-asserting the value fits (it always does
/// on the 64-bit targets this workspace supports, but the contract is
/// explicit rather than assumed).
#[inline]
#[must_use]
pub const fn checked_usize(v: u128) -> usize {
    debug_assert!(v <= usize::MAX as u128, "checked_usize truncates");
    v as usize
}

/// Extracts a 4-bit nybble value as `u8`. The caller masks; this is
/// `checked_u8` with a tighter bound that documents the 4-bit intent at
/// the nybble resolution of the Multi-Resolution Aggregate analysis.
#[inline]
#[must_use]
pub const fn checked_nybble(v: u128) -> u8 {
    debug_assert!(v <= 0xf, "checked_nybble: not a nybble");
    checked_u8(v)
}

/// Extracts a 16-bit segment value as `u16` (alias of [`checked_u16`]
/// named for the segment resolution).
#[inline]
#[must_use]
pub const fn checked_seg(v: u128) -> u16 {
    checked_u16(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_values_pass_through() {
        assert_eq!(checked_u8(0xff), 0xff);
        assert_eq!(checked_u16(0xffff), 0xffff);
        assert_eq!(checked_u32(0xffff_ffff), 0xffff_ffff);
        assert_eq!(checked_usize(42), 42);
        assert_eq!(checked_nybble(0xf), 0xf);
        assert_eq!(checked_seg(0x2001), 0x2001);
    }

    #[test]
    fn works_in_const_context() {
        const SEG: u16 = checked_seg(0x2001);
        assert_eq!(SEG, 0x2001);
    }

    #[test]
    #[should_panic(expected = "truncates")]
    #[cfg(debug_assertions)]
    fn truncation_fails_loudly_in_debug() {
        let _ = checked_u8(0x100);
    }

    #[test]
    #[should_panic(expected = "not a nybble")]
    #[cfg(debug_assertions)]
    fn nybble_range_is_enforced() {
        let _ = checked_nybble(0x10);
    }
}
